package daemon

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"overify/internal/verdicts"
)

// Client is the thin side of the protocol: it frames requests, demuxes
// pipelined replies by packet id, and turns error packets back into Go
// errors. One Client is safe for concurrent use — `symbex -daemon` uses
// one call at a time, but tests and the bench harness multiplex.
type Client struct {
	rw     io.ReadWriter
	closer io.Closer

	wm sync.Mutex // serializes WritePacket

	mu      sync.Mutex
	nextID  uint32
	pending map[uint32]chan *Packet
	err     error // terminal read-loop error; set once

	// ServerName is the daemon's self-reported name from the handshake.
	ServerName string
}

// Dial connects to a daemon on a unix socket and performs the
// handshake.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("unix", addr)
	if err != nil {
		return nil, fmt.Errorf("daemon: dial %s: %w", addr, err)
	}
	c, err := NewClient(conn, conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// NewClient wraps an established stream (socket, or a child daemon's
// stdio pipes) and performs the handshake. closer may be nil.
func NewClient(rw io.ReadWriter, closer io.Closer) (*Client, error) {
	c := &Client{rw: rw, closer: closer, pending: map[uint32]chan *Packet{}}

	// Handshake synchronously, before the demux loop exists: the first
	// reply on the wire answers the hello.
	if err := WritePacket(rw, &Packet{ID: c.id(), Kind: KindHello, Body: body(Hello{Version: ProtocolVersion})}); err != nil {
		return nil, err
	}
	reply, err := ReadPacket(rw)
	if err != nil {
		return nil, fmt.Errorf("daemon: handshake read: %w", err)
	}
	switch reply.Kind {
	case KindHello:
		var h Hello
		if err := decode(reply.Body, &h); err != nil {
			return nil, fmt.Errorf("daemon: handshake: %w", err)
		}
		if h.Version != ProtocolVersion {
			return nil, fmt.Errorf("daemon: protocol version mismatch: daemon %d, client %d", h.Version, ProtocolVersion)
		}
		c.ServerName = h.Name
	case KindError:
		var e ErrorBody
		_ = decode(reply.Body, &e)
		return nil, fmt.Errorf("daemon: handshake rejected: %s", e.Message)
	default:
		return nil, fmt.Errorf("daemon: handshake: unexpected %q packet", reply.Kind)
	}

	go c.readLoop()
	return c, nil
}

func (c *Client) id() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	return c.nextID
}

// readLoop demuxes replies to their waiting calls until the stream
// dies, then fails every outstanding call.
func (c *Client) readLoop() {
	for {
		p, err := ReadPacket(c.rw)
		if err != nil {
			c.mu.Lock()
			if c.err == nil {
				c.err = err
				if errors.Is(err, io.EOF) {
					c.err = errors.New("daemon: connection closed")
				}
			}
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		ch := c.pending[p.ID]
		delete(c.pending, p.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- p
		}
		// Replies nobody awaits (e.g. id-0 decode errors for packets we
		// never sent) are dropped.
	}
}

// call sends one request and blocks for its reply.
func (c *Client) call(kind string, reqBody any, replyBody any) error {
	id := c.id()
	ch := make(chan *Packet, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	c.pending[id] = ch
	c.mu.Unlock()

	c.wm.Lock()
	err := WritePacket(c.rw, &Packet{ID: id, Kind: kind, Body: body(reqBody)})
	c.wm.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return err
	}

	p, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = errors.New("daemon: connection closed")
		}
		return err
	}
	switch p.Kind {
	case KindReply:
		return decode(p.Body, replyBody)
	case KindError:
		var e ErrorBody
		if err := decode(p.Body, &e); err != nil {
			return fmt.Errorf("daemon: undecodable error reply: %w", err)
		}
		if e.Overloaded {
			return &OverloadedError{Message: e.Message}
		}
		return errors.New(e.Message)
	default:
		return fmt.Errorf("daemon: unexpected %q reply", p.Kind)
	}
}

// OverloadedError marks an admission-control rejection: the request
// was well-formed and may be retried later.
type OverloadedError struct{ Message string }

func (e *OverloadedError) Error() string { return e.Message }

// Verify runs one verify request on the daemon.
func (c *Client) Verify(req *VerifyRequest) (*VerifyReply, error) {
	var reply VerifyReply
	if err := c.call(KindVerify, req, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// Compile runs one compile-only request on the daemon.
func (c *Client) Compile(req *CompileRequest) (*CompileReply, error) {
	var reply CompileReply
	if err := c.call(KindCompile, req, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// DistExplore ships one encoded frontier shard to the daemon and
// blocks until the shard is drained.
func (c *Client) DistExplore(req *DistExploreRequest) (*DistExploreReply, error) {
	var reply DistExploreReply
	if err := c.call(KindDistExplore, req, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// VerdictGet probes the daemon's verdict cache service.
func (c *Client) VerdictGet(key verdicts.Key) (*verdicts.Entry, bool, error) {
	var reply VerdictGetReply
	if err := c.call(KindVerdictGet, VerdictGetRequest{Key: key}, &reply); err != nil {
		return nil, false, err
	}
	return reply.Entry, reply.Found && reply.Entry != nil, nil
}

// VerdictPut publishes an entry into the daemon's verdict cache
// service. Stored is false when the daemon runs without a store.
func (c *Client) VerdictPut(key verdicts.Key, e *verdicts.Entry) (bool, error) {
	var reply VerdictPutReply
	if err := c.call(KindVerdictPut, VerdictPutRequest{Key: key, Entry: e}, &reply); err != nil {
		return false, err
	}
	return reply.Stored, nil
}

// RemoteStore adapts a client's verdict frames to the store shape the
// verification layers expect: Get/Put over the wire, errors swallowed
// into misses (a dead cache peer must never fail a verify).
type RemoteStore struct{ C *Client }

// Get probes the remote cache; transport errors read as misses.
func (r *RemoteStore) Get(k verdicts.Key) (*verdicts.Entry, bool) {
	e, ok, err := r.C.VerdictGet(k)
	if err != nil {
		return nil, false
	}
	return e, ok
}

// Put publishes best-effort.
func (r *RemoteStore) Put(k verdicts.Key, e *verdicts.Entry) error {
	_, err := r.C.VerdictPut(k, e)
	return err
}

// Stats fetches the daemon's counter snapshot.
func (c *Client) Stats() (*StatsReply, error) {
	var reply StatsReply
	if err := c.call(KindStats, struct{}{}, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// Close tears the connection down; outstanding calls fail.
func (c *Client) Close() error {
	if c.closer != nil {
		return c.closer.Close()
	}
	return nil
}
