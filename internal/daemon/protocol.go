// Package daemon implements overifyd, the long-lived verification
// server: a length-prefixed JSON packet protocol (esbuild's service
// mode is the exemplar shape) served over stdio or a unix socket, with
// one warm set of caches — the hash-consed expression DAG, the striped
// solver query cache, compiled modules, and the content-addressed
// verdict store — shared across every request the process ever serves.
//
// Protocol. Each packet is a 4-byte little-endian payload length
// followed by that many bytes of JSON encoding a Packet. The first
// packet on a connection must be a "hello" carrying the client's
// protocol version; the server answers with its own hello or an error
// (version mismatch closes the connection — nothing after a failed
// handshake is trusted to parse). After the handshake, requests
// ("verify", "compile", "stats") may be pipelined and are answered
// concurrently; replies carry the request's id, so arrival order is
// unspecified. A packet that fails to decode is answered with an
// "error" packet (id 0 when the id itself was unreadable) and the
// connection keeps serving — a bad client request must never take the
// daemon down.
package daemon

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"overify/internal/symex"
	"overify/internal/verdicts"
)

// ProtocolVersion gates the handshake: client and server must agree
// exactly. Bump on any wire-visible change.
//
// Version history:
//
//	1: initial protocol (verify/compile/stats).
//	2: VerifyRequest gains slice/checks, VerifyReply gains tapeReuses.
//	3: distExplore/verdictGet/verdictPut frames for the distributed
//	   frontier and the shared verdict cache service.
const ProtocolVersion = 3

// MaxPacket bounds a single packet's payload (16 MiB): large enough
// for any source file plus headroom, small enough that a corrupt
// length prefix cannot make the reader allocate unboundedly.
const MaxPacket = 16 << 20

// Packet kinds.
const (
	KindHello   = "hello"   // handshake (both directions)
	KindVerify  = "verify"  // client request: compile + symbolically verify
	KindCompile = "compile" // client request: compile only, report pipeline stats
	KindStats   = "stats"   // client request: daemon-wide cache/job counters
	KindReply   = "reply"   // server response carrying a request-specific body
	KindError   = "error"   // server response: request failed (body: ErrorBody)

	// Distributed-frontier frames (protocol 3). A coordinator splits an
	// exploration into frontier shards, encodes each shard with the
	// symex state codec, and offers the shards to worker daemons as
	// distExplore requests; workers drain their shard to exhaustion and
	// reply with schedule-invariant counters plus the bugs and covered
	// blocks they saw. verdictGet/verdictPut expose the worker's verdict
	// store over the same connection so a cluster shares one cache.
	KindDistExplore = "distExplore" // client request: drain an encoded frontier shard
	KindVerdictGet  = "verdictGet"  // client request: probe the shared verdict cache
	KindVerdictPut  = "verdictPut"  // client request: publish into the shared verdict cache
)

// Packet is the wire unit. Body holds the kind-specific payload,
// decoded by the handler (requests) or the awaiting caller (replies).
type Packet struct {
	ID   uint32          `json:"id"`
	Kind string          `json:"kind"`
	Body json.RawMessage `json:"body,omitempty"`
}

// Hello is the handshake body, both directions. The server's reply
// also names the daemon so clients can log what they connected to.
type Hello struct {
	Version int    `json:"version"`
	Name    string `json:"name,omitempty"`
}

// ErrorBody is the payload of a KindError reply.
type ErrorBody struct {
	Message string `json:"message"`
	// Overloaded marks admission-control rejections (queue deadline
	// exceeded or daemon draining): the request was well-formed and may
	// be retried, unlike a protocol or verification error.
	Overloaded bool `json:"overloaded,omitempty"`
}

// VerifyRequest asks the daemon to compile and symbolically verify one
// program. Exactly one of Source (with Name) or Prog (a bundled corpus
// program) must be set.
type VerifyRequest struct {
	Name   string `json:"name,omitempty"`   // display name for Source
	Source string `json:"source,omitempty"` // MiniC source text
	Prog   string `json:"prog,omitempty"`   // corpus program name

	Level  string `json:"level,omitempty"`  // optimization level (default -OVERIFY)
	Passes string `json:"passes,omitempty"` // explicit pass pipeline (disables verdict caching)
	Entry  string `json:"entry,omitempty"`  // entry function (default umain)

	InputBytes int    `json:"inputBytes,omitempty"` // symbolic input size (default 4)
	TimeoutMS  int64  `json:"timeoutMs,omitempty"`  // exploration budget (0 = none)
	MaxInstrs  int64  `json:"maxInstrs,omitempty"`  // instruction cap (0 = engine default)
	Search     string `json:"search,omitempty"`     // exploration order (default dfs)
	Seed       int64  `json:"seed,omitempty"`
	Cover      int    `json:"cover,omitempty"`   // CoverTarget (0 = off)
	Workers    int    `json:"workers,omitempty"` // engine workers (default 1: the daemon parallelizes across requests)

	// Slice enables verification-aware slicing: the pipeline deletes
	// whatever no kept check can observe before exploration.
	Slice bool `json:"slice,omitempty"`
	// Checks restricts verification (and, with Slice, the slicing
	// closure) to a comma-separated subset of check names — see
	// ir.ParseCheckSet. Empty or "all" keeps every check.
	Checks string `json:"checks,omitempty"`

	// NoVerdicts bypasses the verdict store for this request (the
	// exploration still warms and reads the solver cache). Benchmarks
	// use it to isolate the solver-cache layer.
	NoVerdicts bool `json:"noVerdicts,omitempty"`
}

// BugReport is one merged bug in a VerifyReply.
type BugReport struct {
	Kind  string `json:"kind"`
	Msg   string `json:"msg"`
	Where string `json:"where"`
	Input []byte `json:"input,omitempty"`
}

// VerifyReply is the verify response. Render is the canonical
// schedule-invariant byte rendering of the outcome (verdicts.Render):
// two replies for identical content must carry byte-identical Renders,
// no matter which caches served them — that is the conformance claim
// the daemon tests pin. Everything else is advisory (timings, cache
// provenance) and may differ between runs.
type VerifyReply struct {
	Render string `json:"render"`

	Name     string      `json:"name"`
	Level    string      `json:"level"`
	Entry    string      `json:"entry"`
	Bugs     []BugReport `json:"bugs,omitempty"`
	Paths    int64       `json:"paths"`
	Instrs   int64       `json:"instrs"`
	TimedOut bool        `json:"timedOut,omitempty"`

	// Cache provenance for this request.
	VerdictCacheHit bool  `json:"verdictCacheHit,omitempty"`
	CompileCacheHit bool  `json:"compileCacheHit,omitempty"`
	SolverQueries   int64 `json:"solverQueries"`
	SolverWarmHits  int64 `json:"solverWarmHits"` // cache + partition + model-reuse hits (group-level; can exceed queries)
	SolverSearches  int64 `json:"solverSearches"` // fresh searches actually run (compiles + tape reuses); queries - searches were answered warm
	TapeReuses      int64 `json:"tapeReuses"`     // searches that reused a generation-cached compiled tape
	Generation      int64 `json:"generation"`     // builder/cache generation that served the run

	CompileMS float64 `json:"compileMs"`
	VerifyMS  float64 `json:"verifyMs"`
}

// DistExploreRequest ships one frontier shard to a worker daemon. The
// compile identity fields (source/prog, level, passes, slice, checks)
// must match the coordinator's compile exactly — the state codec names
// functions, blocks, and instructions by position, so a divergent
// module would decode garbage (and be rejected by the codec's bounds
// checks, not silently accepted). States is the symex state-codec
// frame produced by Engine.EncodeStates; JSON transports it as base64.
type DistExploreRequest struct {
	Name   string `json:"name,omitempty"`
	Source string `json:"source,omitempty"`
	Prog   string `json:"prog,omitempty"`
	Level  string `json:"level,omitempty"`
	Passes string `json:"passes,omitempty"`
	Slice  bool   `json:"slice,omitempty"`
	Checks string `json:"checks,omitempty"`

	Search    string `json:"search,omitempty"`  // exploration order (default dfs)
	Seed      int64  `json:"seed,omitempty"`
	Workers   int    `json:"workers,omitempty"` // engine workers inside this daemon
	TimeoutMS int64  `json:"timeoutMs,omitempty"`
	MaxInstrs int64  `json:"maxInstrs,omitempty"`

	// Portfolio/PortfolioStall configure the solver portfolio for this
	// shard (0 = fixed-order solving, the historical behavior).
	Portfolio      int   `json:"portfolio,omitempty"`
	PortfolioStall int64 `json:"portfolioStall,omitempty"`

	States []byte `json:"states"` // Engine.EncodeStates frame
}

// DistExploreReply reports one drained shard. Stats and Bugs are the
// engine's native types so the coordinator's MergeReports sees exactly
// what a local worker would have contributed; Covered carries the
// shard's covered-block names ("fn/block") because block *counts*
// cannot be summed across processes — the coordinator unions names.
type DistExploreReply struct {
	Stats   symex.Stats `json:"stats"`
	Bugs    []symex.Bug `json:"bugs,omitempty"`
	Covered []string    `json:"covered,omitempty"`

	NStates         int     `json:"nStates"` // states decoded from the frame
	Generation      int64   `json:"generation"`
	CompileCacheHit bool    `json:"compileCacheHit,omitempty"`
	ExploreMS       float64 `json:"exploreMs"`
}

// VerdictGetRequest probes the daemon's verdict store; the shared
// verdict cache service lets every worker in a cluster reuse any
// worker's published outcome.
type VerdictGetRequest struct {
	Key verdicts.Key `json:"key"`
}

// VerdictGetReply answers a probe. Entry is nil when Found is false.
type VerdictGetReply struct {
	Found bool            `json:"found"`
	Entry *verdicts.Entry `json:"entry,omitempty"`
}

// VerdictPutRequest publishes an entry into the daemon's verdict
// store.
type VerdictPutRequest struct {
	Key   verdicts.Key    `json:"key"`
	Entry *verdicts.Entry `json:"entry"`
}

// VerdictPutReply acknowledges a publish. Stored is false when the
// daemon runs without a verdict store (the put is a no-op, not an
// error — caching is best-effort everywhere else too).
type VerdictPutReply struct {
	Stored bool `json:"stored"`
}

// CompileRequest asks the daemon to compile only. Same source/prog
// convention as VerifyRequest.
type CompileRequest struct {
	Name   string `json:"name,omitempty"`
	Source string `json:"source,omitempty"`
	Prog   string `json:"prog,omitempty"`
	Level  string `json:"level,omitempty"`
	Passes string `json:"passes,omitempty"`
	// IR requests the optimized module listing in the reply (the
	// "explain what the pipeline did" mode).
	IR bool `json:"ir,omitempty"`
}

// CompileReply reports one compile.
type CompileReply struct {
	Name            string  `json:"name"`
	Level           string  `json:"level"`
	CompileMS       float64 `json:"compileMs"`
	PassInvocations int64   `json:"passInvocations"`
	SkippedRuns     int64   `json:"skippedRuns"`
	AnalysisHitRate float64 `json:"analysisHitRate"`
	CompileCacheHit bool    `json:"compileCacheHit,omitempty"`
	IR              string  `json:"ir,omitempty"`
}

// StatsReply is the daemon-wide counter snapshot.
type StatsReply struct {
	Name       string `json:"name"`
	Generation int64  `json:"generation"`

	Jobs struct {
		Active   int64 `json:"active"`
		Served   int64 `json:"served"`
		Rejected int64 `json:"rejected"`
		MaxJobs  int   `json:"maxJobs"`
	} `json:"jobs"`

	Builder struct {
		Nodes    int64 `json:"nodes"`
		Hits     int64 `json:"hits"`
		Cap      int64 `json:"cap"`
		Rotation int64 `json:"rotations"`
	} `json:"builder"`

	SolverCache struct {
		Entries   int64 `json:"entries"`
		Hits      int64 `json:"hits"`
		Misses    int64 `json:"misses"`
		Evictions int64 `json:"evictions"`
		Capacity  int   `json:"capacity"`
	} `json:"solverCache"`

	Verdicts struct {
		Dir       string `json:"dir"`
		Entries   int    `json:"entries"`
		Hits      int64  `json:"hits"`
		Misses    int64  `json:"misses"`
		Stores    int64  `json:"stores"`
		Evictions int64  `json:"evictions"`
		Limit     int    `json:"limit"`
	} `json:"verdicts"`

	Compiles struct {
		Entries   int   `json:"entries"`
		Hits      int64 `json:"hits"`
		Misses    int64 `json:"misses"`
		Evictions int64 `json:"evictions"`
		Capacity  int   `json:"capacity"`
	} `json:"compiles"`
}

// WritePacket frames and writes one packet. Callers sharing a writer
// must serialize calls (the server holds a per-connection write lock).
func WritePacket(w io.Writer, p *Packet) error {
	payload, err := json.Marshal(p)
	if err != nil {
		return fmt.Errorf("daemon: encode packet: %w", err)
	}
	if len(payload) > MaxPacket {
		return fmt.Errorf("daemon: packet of %d bytes exceeds the %d-byte bound", len(payload), MaxPacket)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// ReadPacket reads one length-prefixed packet. An oversized or
// negative length is a framing error: the stream cannot be resynced
// and the connection should be closed.
func ReadPacket(r io.Reader) (*Packet, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxPacket {
		return nil, fmt.Errorf("daemon: framing: %d-byte packet exceeds the %d-byte bound", n, MaxPacket)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	var p Packet
	if err := json.Unmarshal(payload, &p); err != nil {
		// The frame was intact but the JSON was not: report decodability
		// separately so the server can answer with an error packet
		// instead of dropping the connection.
		return nil, &DecodeError{Err: err}
	}
	return &p, nil
}

// DecodeError marks a packet whose framing was sound but whose JSON
// payload did not decode; the connection remains usable.
type DecodeError struct{ Err error }

func (e *DecodeError) Error() string { return fmt.Sprintf("daemon: decode packet: %v", e.Err) }
func (e *DecodeError) Unwrap() error { return e.Err }

// body marshals a reply body, panicking on the impossible (all reply
// types marshal cleanly by construction).
func body(v any) json.RawMessage {
	data, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("daemon: marshal %T: %v", v, err))
	}
	return data
}
