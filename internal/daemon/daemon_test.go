package daemon

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"overify/internal/core"
	"overify/internal/coreutils"
	"overify/internal/pipeline"
	"overify/internal/verdicts"
)

// pipeServer starts a server over an in-memory connection and returns
// a handshaken client. Cleanup tears both ends down.
func pipeServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s := NewServer(cfg)
	clientEnd, serverEnd := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.ServeConn(serverEnd)
	}()
	c, err := NewClient(clientEnd, clientEnd)
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	t.Cleanup(func() {
		c.Close()
		<-done
	})
	return s, c
}

// cliRender reproduces what a cold `symbex` CLI run would print for a
// corpus program: fresh compile, fresh engine, canonical rendering.
func cliRender(t *testing.T, prog string, inputBytes int) string {
	t.Helper()
	p, ok := coreutils.Get(prog)
	if !ok {
		t.Fatalf("unknown corpus program %q", prog)
	}
	c, err := core.CompileProgram(p, pipeline.OVerify)
	if err != nil {
		t.Fatalf("compile %s: %v", prog, err)
	}
	rep, err := c.Verify("umain", core.VerifyOptions{InputBytes: inputBytes})
	if err != nil {
		t.Fatalf("verify %s: %v", prog, err)
	}
	return verdicts.Render(rep)
}

func TestProtocolRoundTrip(t *testing.T) {
	_, c := pipeServer(t, Config{Name: "test-daemon"})
	if c.ServerName != "test-daemon" {
		t.Errorf("handshake name = %q, want test-daemon", c.ServerName)
	}

	reply, err := c.Verify(&VerifyRequest{Prog: "basename", InputBytes: 2})
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if reply.Render == "" || reply.Render != cliRender(t, "basename", 2) {
		t.Errorf("daemon render differs from CLI render:\n%s", reply.Render)
	}
	if reply.Generation != 1 {
		t.Errorf("generation = %d, want 1", reply.Generation)
	}

	comp, err := c.Compile(&CompileRequest{Prog: "basename", IR: true})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if comp.IR == "" || comp.PassInvocations == 0 {
		t.Errorf("compile reply missing IR or pass stats: %+v", comp)
	}
	if !comp.CompileCacheHit {
		t.Error("compile after verify of the same program missed the module cache")
	}

	stats, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if stats.Jobs.Served != 2 || stats.Compiles.Entries != 1 {
		t.Errorf("stats: served=%d compiles=%d, want 2 and 1", stats.Jobs.Served, stats.Compiles.Entries)
	}

	// Unknown corpus program: an error reply, and the connection keeps
	// serving afterwards.
	if _, err := c.Verify(&VerifyRequest{Prog: "no-such-program"}); err == nil {
		t.Error("verify of an unknown program succeeded")
	}
	if _, err := c.Stats(); err != nil {
		t.Errorf("connection dead after an error reply: %v", err)
	}
}

func TestHandshakeVersionMismatch(t *testing.T) {
	s := NewServer(Config{})
	clientEnd, serverEnd := net.Pipe()
	go s.ServeConn(serverEnd)
	defer clientEnd.Close()

	if err := WritePacket(clientEnd, &Packet{ID: 1, Kind: KindHello, Body: body(Hello{Version: ProtocolVersion + 1})}); err != nil {
		t.Fatal(err)
	}
	p, err := ReadPacket(clientEnd)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != KindError {
		t.Fatalf("got %q reply to a mismatched hello, want error", p.Kind)
	}
	// The server closes the connection after a failed handshake.
	if _, err := ReadPacket(clientEnd); err == nil {
		t.Error("connection still alive after version mismatch")
	}
}

func TestHandshakeRequired(t *testing.T) {
	s := NewServer(Config{})
	clientEnd, serverEnd := net.Pipe()
	go s.ServeConn(serverEnd)
	defer clientEnd.Close()

	// A verify before any hello is a handshake violation.
	if err := WritePacket(clientEnd, &Packet{ID: 7, Kind: KindVerify, Body: body(VerifyRequest{Prog: "basename"})}); err != nil {
		t.Fatal(err)
	}
	p, err := ReadPacket(clientEnd)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != KindError {
		t.Fatalf("got %q reply to a hello-less request, want error", p.Kind)
	}
}

// TestMalformedPacket: a sound frame with undecodable JSON gets an
// error reply — not a crash, not a dropped connection.
func TestMalformedPacket(t *testing.T) {
	s := NewServer(Config{})
	clientEnd, serverEnd := net.Pipe()
	go s.ServeConn(serverEnd)
	defer clientEnd.Close()

	if err := WritePacket(clientEnd, &Packet{ID: 1, Kind: KindHello, Body: body(Hello{Version: ProtocolVersion})}); err != nil {
		t.Fatal(err)
	}
	if p, err := ReadPacket(clientEnd); err != nil || p.Kind != KindHello {
		t.Fatalf("handshake failed: %v %+v", err, p)
	}

	// Frame a payload that is not JSON at all.
	garbage := []byte("this is not json {{{")
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(garbage)))
	if _, err := clientEnd.Write(append(hdr[:], garbage...)); err != nil {
		t.Fatal(err)
	}
	p, err := ReadPacket(clientEnd)
	if err != nil {
		t.Fatalf("no reply to a malformed packet: %v", err)
	}
	if p.Kind != KindError || p.ID != 0 {
		t.Errorf("malformed packet answered with kind=%q id=%d, want error id=0", p.Kind, p.ID)
	}

	// The connection must still serve well-formed requests.
	if err := WritePacket(clientEnd, &Packet{ID: 2, Kind: KindStats}); err != nil {
		t.Fatal(err)
	}
	if p, err := ReadPacket(clientEnd); err != nil || p.Kind != KindReply {
		t.Errorf("connection dead after malformed packet: %v %+v", err, p)
	}
}

func TestOversizedFrameClosesConnection(t *testing.T) {
	s := NewServer(Config{})
	clientEnd, serverEnd := net.Pipe()
	go s.ServeConn(serverEnd)
	defer clientEnd.Close()

	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], MaxPacket+1)
	if _, err := clientEnd.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if p, err := ReadPacket(clientEnd); err == nil {
		t.Errorf("connection survived an oversized frame, got %+v", p)
	}
}

// TestDaemonWarmByteIdentical is the tentpole acceptance criterion: a
// repeat verify against a warm daemon returns a byte-identical report
// to a cold CLI run, while skipping (almost) all solver work.
func TestDaemonWarmByteIdentical(t *testing.T) {
	store, err := verdicts.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, c := pipeServer(t, Config{Verdicts: store})

	want := cliRender(t, "basename", 2)

	cold, err := c.Verify(&VerifyRequest{Prog: "basename", InputBytes: 2})
	if err != nil {
		t.Fatalf("cold verify: %v", err)
	}
	if cold.Render != want {
		t.Fatalf("cold daemon render differs from CLI:\ndaemon:\n%s\ncli:\n%s", cold.Render, want)
	}
	if cold.VerdictCacheHit {
		t.Error("cold run claims a verdict cache hit")
	}

	// Warm repeat through the verdict store: no exploration at all.
	warm, err := c.Verify(&VerifyRequest{Prog: "basename", InputBytes: 2})
	if err != nil {
		t.Fatalf("warm verify: %v", err)
	}
	if warm.Render != want {
		t.Errorf("warm render differs from cold:\nwarm:\n%s\ncold:\n%s", warm.Render, want)
	}
	if !warm.VerdictCacheHit || !warm.CompileCacheHit {
		t.Errorf("warm run provenance: verdictHit=%v compileHit=%v, want both", warm.VerdictCacheHit, warm.CompileCacheHit)
	}

	// Warm repeat below the verdict store: the engine runs, but the
	// shared builder + solver cache answer >= 90% of its queries.
	engineWarm, err := c.Verify(&VerifyRequest{Prog: "basename", InputBytes: 2, NoVerdicts: true})
	if err != nil {
		t.Fatalf("engine-warm verify: %v", err)
	}
	if engineWarm.Render != want {
		t.Errorf("engine-warm render differs:\n%s", engineWarm.Render)
	}
	if engineWarm.VerdictCacheHit {
		t.Error("NoVerdicts run claims a verdict hit")
	}
	if engineWarm.SolverQueries == 0 {
		t.Fatal("engine-warm run issued no solver queries; test is vacuous")
	}
	skipped := 1 - float64(engineWarm.SolverSearches)/float64(engineWarm.SolverQueries)
	if skipped < 0.9 {
		t.Errorf("engine-warm run skipped only %.0f%% of %d queries (%d fresh searches), want >= 90%%",
			100*skipped, engineWarm.SolverQueries, engineWarm.SolverSearches)
	}
	if engineWarm.SolverWarmHits == 0 {
		t.Error("engine-warm run reports no warm hits at all")
	}
}

// TestDaemonConcurrentClients: many clients verifying the same corpus
// concurrently all get byte-identical reports, and the shared caches
// actually serve them. Run under -race this is also the data-race pin
// for the whole warm path.
func TestDaemonConcurrentClients(t *testing.T) {
	store, err := verdicts.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, c0 := pipeServer(t, Config{Verdicts: store})

	progs := []string{"basename", "true", "echo"}
	want := map[string]string{}
	for _, p := range progs {
		// Warm through the daemon first so concurrent runs hit warm
		// state; pin against the CLI render.
		reply, err := c0.Verify(&VerifyRequest{Prog: p, InputBytes: 2})
		if err != nil {
			t.Fatalf("warmup %s: %v", p, err)
		}
		if cli := cliRender(t, p, 2); reply.Render != cli {
			t.Fatalf("%s: daemon render differs from CLI", p)
		}
		want[p] = reply.Render
	}

	const clients = 4
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, clients*rounds*len(progs))
	for i := 0; i < clients; i++ {
		clientEnd, serverEnd := net.Pipe()
		s.connsWG.Add(1)
		go func() {
			defer s.connsWG.Done()
			s.ServeConn(serverEnd)
		}()
		c, err := NewClient(clientEnd, clientEnd)
		if err != nil {
			t.Fatalf("client %d handshake: %v", i, err)
		}
		defer c.Close()
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for _, p := range progs {
					reply, err := c.Verify(&VerifyRequest{Prog: p, InputBytes: 2})
					if err != nil {
						errs <- fmt.Errorf("%s: %w", p, err)
						continue
					}
					if reply.Render != want[p] {
						errs <- fmt.Errorf("%s: divergent render", p)
					}
					if !reply.VerdictCacheHit {
						errs <- fmt.Errorf("%s: warm daemon missed the verdict store", p)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := store.Hits(); got < int64(clients*rounds*len(progs)) {
		t.Errorf("verdict store hits = %d, want >= %d", got, clients*rounds*len(progs))
	}
}

// TestDaemonEvictionChurnIdentical: with caches capped far below the
// working set, every layer churns — and verdicts stay byte-identical.
// Eviction may cost time, never correctness.
func TestDaemonEvictionChurnIdentical(t *testing.T) {
	store, err := verdicts.OpenLimited(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	_, c := pipeServer(t, Config{
		Verdicts:        store,
		SolverCacheCap:  64, // 1 slot per stripe
		CompileCacheCap: 1,
		BuilderCap:      1, // rotate generations on practically every request
	})

	progs := []string{"basename", "true", "echo"}
	want := map[string]string{}
	for _, p := range progs {
		want[p] = cliRender(t, p, 2)
	}
	var lastGen int64
	for round := 0; round < 2; round++ {
		for _, p := range progs {
			reply, err := c.Verify(&VerifyRequest{Prog: p, InputBytes: 2})
			if err != nil {
				t.Fatalf("round %d %s: %v", round, p, err)
			}
			if reply.Render != want[p] {
				t.Errorf("round %d %s: render diverged under eviction churn", round, p)
			}
			lastGen = reply.Generation
		}
	}
	if lastGen < 2 {
		t.Errorf("builder never rotated under BuilderCap=1 (generation %d)", lastGen)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Compiles.Evictions == 0 {
		t.Error("compile cache never evicted despite cap 1 over 3 programs")
	}
	if store.Evictions() == 0 {
		t.Error("verdict store never evicted despite cap 1 over 3 programs")
	}
}

// TestAdmissionControl: with one job slot held, a second request is
// rejected as overloaded once the queue deadline passes, and served
// again after the slot frees.
func TestAdmissionControl(t *testing.T) {
	release := make(chan struct{})
	s := NewServer(Config{MaxJobs: 1, QueueWait: 50 * time.Millisecond})
	s.testJobGate = func() { <-release }

	clientEnd, serverEnd := net.Pipe()
	go s.ServeConn(serverEnd)
	c, err := NewClient(clientEnd, clientEnd)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	first := make(chan error, 1)
	go func() {
		_, err := c.Verify(&VerifyRequest{Prog: "true", InputBytes: 2})
		first <- err
	}()

	// Wait until the first job actually holds the slot.
	deadline := time.Now().Add(2 * time.Second)
	for s.active.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}

	_, err = c.Verify(&VerifyRequest{Prog: "true", InputBytes: 2})
	var overloaded *OverloadedError
	if !errors.As(err, &overloaded) {
		t.Fatalf("second request got %v, want an overloaded rejection", err)
	}

	close(release)
	if err := <-first; err != nil {
		t.Errorf("first request failed: %v", err)
	}
	// With the slot free (and the gate open), requests are served again.
	if _, err := c.Verify(&VerifyRequest{Prog: "true", InputBytes: 2}); err != nil {
		t.Errorf("request after slot freed failed: %v", err)
	}
	if s.rejected.Load() != 1 {
		t.Errorf("rejected = %d, want 1", s.rejected.Load())
	}
}

// TestShutdownDrains: Shutdown waits for the in-flight job, then
// rejects new work and closes connections.
func TestShutdownDrains(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	s := NewServer(Config{MaxJobs: 2})
	var once sync.Once
	s.testJobGate = func() {
		once.Do(func() { close(started) })
		<-release
	}

	clientEnd, serverEnd := net.Pipe()
	go s.ServeConn(serverEnd)
	c, err := NewClient(clientEnd, clientEnd)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	first := make(chan error, 1)
	go func() {
		_, err := c.Verify(&VerifyRequest{Prog: "true", InputBytes: 2})
		first <- err
	}()
	<-started

	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		s.Shutdown()
	}()

	// Shutdown must not complete while the job is still running.
	select {
	case <-shutdownDone:
		t.Fatal("Shutdown returned with a job in flight")
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	select {
	case <-shutdownDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown never completed after the job finished")
	}
	if err := <-first; err != nil {
		t.Errorf("in-flight request failed during drain: %v", err)
	}
}

// TestServeUnixSocket exercises the real listener path end to end.
func TestServeUnixSocket(t *testing.T) {
	sock := shortSocketPath(t)
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	s := NewServer(Config{})
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(l) }()

	c, err := Dial(sock)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	reply, err := c.Verify(&VerifyRequest{Prog: "true", InputBytes: 2})
	if err != nil {
		t.Fatalf("verify over socket: %v", err)
	}
	if reply.Render == "" {
		t.Error("empty render over socket")
	}
	c.Close()

	s.Shutdown()
	select {
	case err := <-serveDone:
		if err != nil {
			t.Errorf("Serve returned %v after Shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
}

// shortSocketPath returns a socket path short enough for sun_path
// (t.TempDir can exceed the ~104-byte limit on some systems).
func shortSocketPath(t *testing.T) string {
	t.Helper()
	dir, err := os.MkdirTemp("", "ovd")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	return dir + "/d.sock"
}

// TestWarmTapeReuse: with the solver's verdict cache squeezed to one
// slot per stripe, a warm repeat verify re-searches groups it has seen
// before — and must find their compiled tapes in the generation's tape
// cache instead of re-flattening the constraint DAGs.
func TestWarmTapeReuse(t *testing.T) {
	_, c := pipeServer(t, Config{
		SolverCacheCap: 64, // 1 slot per stripe: evictions force re-searches
	})
	req := &VerifyRequest{Prog: "basename", InputBytes: 3, NoVerdicts: true}
	cold, err := c.Verify(req)
	if err != nil {
		t.Fatalf("cold verify: %v", err)
	}
	warm, err := c.Verify(req)
	if err != nil {
		t.Fatalf("warm verify: %v", err)
	}
	if warm.Render != cold.Render {
		t.Error("warm render diverged from cold")
	}
	if warm.Generation != cold.Generation {
		t.Fatalf("generation rotated mid-test (%d -> %d); tape reuse is generation-scoped", cold.Generation, warm.Generation)
	}
	if warm.TapeReuses == 0 {
		t.Errorf("warm run reused no tapes (searches %d)", warm.SolverSearches)
	}
	if warm.SolverSearches < warm.TapeReuses {
		t.Errorf("accounting: %d searches < %d tape reuses", warm.SolverSearches, warm.TapeReuses)
	}
}

// TestPreloadWarmsModuleCache: a preloaded source's first client
// request must hit the module cache — the compile happened before the
// daemon accepted the connection.
func TestPreloadWarmsModuleCache(t *testing.T) {
	dir := t.TempDir()
	src := "int umain(unsigned char *input, int len) { return (int)input[0]; }\n"
	path := dir + "/warm.c"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	s, c := pipeServer(t, Config{})
	n, err := s.Preload(dir + "/*.c")
	if err != nil {
		t.Fatalf("preload: %v", err)
	}
	if n != 1 {
		t.Fatalf("preloaded %d files, want 1", n)
	}
	reply, err := c.Verify(&VerifyRequest{Name: path, Source: src, InputBytes: 2})
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !reply.CompileCacheHit {
		t.Error("first request on a preloaded module missed the module cache")
	}

	// A broken entry must abort loudly, not be skipped.
	if err := os.WriteFile(dir+"/broken.c", []byte("int umain("), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Preload(dir + "/*.c"); err == nil {
		t.Error("preload of a non-compiling file reported success")
	}
}
