package daemon

import (
	"net"
	"testing"
	"time"
)

// pipeClient attaches one more in-memory client connection to an
// existing server (pipeServer creates the server and its first
// client; fairness tests need several connections to one server).
func pipeClient(t *testing.T, s *Server) (*Server, *Client) {
	t.Helper()
	clientEnd, serverEnd := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.ServeConn(serverEnd)
	}()
	c, err := NewClient(clientEnd, clientEnd)
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	t.Cleanup(func() {
		c.Close()
		<-done
	})
	return s, c
}

// waitUntil polls cond to sequence concurrent admission scenarios
// deterministically.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionPerClientFairness is the regression test for the old
// single-FIFO admission: with one job slot, client A pipelines four
// requests and client B sends one. Under FIFO, B waited behind all of
// A's queue; under round-robin dispatch B's request is granted on the
// second slot release, interleaving A A B A A.
func TestAdmissionPerClientFairness(t *testing.T) {
	gate := make(chan struct{})
	s := NewServer(Config{MaxJobs: 1, QueueWait: time.Minute})
	s.testJobGate = func() { <-gate }

	_, a := pipeClient(t, s)
	_, b := pipeClient(t, s)

	done := make(chan string, 8)
	send := func(c *Client, label string) {
		go func() {
			if _, err := c.Verify(&VerifyRequest{Prog: "echo", InputBytes: 2}); err != nil {
				t.Errorf("%s verify: %v", label, err)
			}
			done <- label
		}()
	}

	// A's first request takes the slot and parks on the gate.
	send(a, "A")
	waitUntil(t, "first job to hold the slot", func() bool { return s.active.Load() == 1 })
	// Three more from A queue up behind it...
	send(a, "A")
	send(a, "A")
	send(a, "A")
	waitUntil(t, "A's pipeline to queue", func() bool { return s.adm.totalQueued() == 3 })
	// ...then B's single request arrives.
	send(b, "B")
	waitUntil(t, "B to queue", func() bool { return s.adm.totalQueued() == 4 })

	// Release jobs one at a time; each gate token frees exactly one
	// granted job, and its completion releases the slot to the next
	// connection in rotation.
	var order []string
	for i := 0; i < 5; i++ {
		gate <- struct{}{}
		order = append(order, <-done)
	}
	want := []string{"A", "A", "B", "A", "A"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("completion order %v, want %v (B starved by A's pipeline)", order, want)
		}
	}
}

// TestAdmissionTimeoutUnderRoundRobin pins the overload path: with the
// slot held and QueueWait tiny, a queued request is rejected as
// overloaded and its waiter is removed from the rotation.
func TestAdmissionTimeoutUnderRoundRobin(t *testing.T) {
	gate := make(chan struct{})
	s := NewServer(Config{MaxJobs: 1, QueueWait: 30 * time.Millisecond})
	s.testJobGate = func() { <-gate }

	_, a := pipeClient(t, s)

	done := make(chan error, 2)
	go func() {
		_, err := a.Verify(&VerifyRequest{Prog: "echo", InputBytes: 2})
		done <- err
	}()
	waitUntil(t, "first job to hold the slot", func() bool { return s.active.Load() == 1 })

	// This one queues and must time out while the slot is held.
	if _, err := a.Verify(&VerifyRequest{Prog: "echo", InputBytes: 2}); err == nil {
		t.Fatalf("queued request succeeded despite a held slot and expired QueueWait")
	} else if _, ok := err.(*OverloadedError); !ok {
		t.Fatalf("queued request failed with %v, want OverloadedError", err)
	}
	if s.adm.totalQueued() != 0 {
		t.Fatalf("abandoned waiter still queued: %d", s.adm.totalQueued())
	}

	gate <- struct{}{}
	if err := <-done; err != nil {
		t.Fatalf("slot-holding request failed: %v", err)
	}
}
