package daemon

import (
	"sync"
	"time"
)

// admission is the daemon's job-slot dispatcher. The old design was a
// single FIFO semaphore shared by every connection, which let one
// chatty client pipeline enough requests to starve everyone else: with
// N slots and one client holding a queue of M requests, a second
// client's first request waited behind all M. This version keeps the
// same slot count but dispatches round-robin *across connections*:
// each connection holds a private FIFO of waiters, and a freed slot
// goes to the next connection in rotation, so a client's latency
// depends on how many clients are competing, not on how deep any one
// client's pipeline is. Within a connection, FIFO order is preserved.
type admission struct {
	mu    sync.Mutex
	slots int // free slots

	ring   []*connQueue // connections with at least one waiter, rotation order
	rr     int          // next ring index to grant
	byConn map[*conn]*connQueue
}

// connQueue is one connection's FIFO of waiters.
type connQueue struct {
	c       *conn
	waiters []*waiter
}

// waiter is one queued request. granted is written under admission.mu;
// the channel is closed exactly once, on grant.
type waiter struct {
	ch      chan struct{}
	granted bool
}

func newAdmission(slots int) *admission {
	return &admission{slots: slots, byConn: make(map[*conn]*connQueue)}
}

// grantResult reports how an acquire attempt ended.
type grantResult int

const (
	granted grantResult = iota
	timedOut
	drained
)

// acquire blocks until the request owns a job slot, the deadline
// passes, or the daemon drains. On granted the caller must release().
func (a *admission) acquire(c *conn, wait time.Duration, drainCh <-chan struct{}) grantResult {
	w := &waiter{ch: make(chan struct{})}
	a.mu.Lock()
	q := a.byConn[c]
	if q == nil {
		q = &connQueue{c: c}
		a.byConn[c] = q
		a.ring = append(a.ring, q)
	}
	q.waiters = append(q.waiters, w)
	a.dispatch()
	a.mu.Unlock()

	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-w.ch:
		return granted
	case <-timer.C:
		if a.abandon(c, w) {
			return timedOut
		}
		// Lost the race: the slot was granted as the timer fired. Hand
		// it back and still report the timeout — the reply already says
		// overloaded, and the slot should go to a live waiter.
		a.release()
		return timedOut
	case <-drainCh:
		if a.abandon(c, w) {
			return drained
		}
		a.release()
		return drained
	}
}

// release frees the caller's slot and hands it to the next waiter in
// rotation.
func (a *admission) release() {
	a.mu.Lock()
	a.slots++
	a.dispatch()
	a.mu.Unlock()
}

// dispatch hands free slots to waiters, one connection per step of the
// rotation. Caller holds a.mu.
func (a *admission) dispatch() {
	for a.slots > 0 && len(a.ring) > 0 {
		if a.rr >= len(a.ring) {
			a.rr = 0
		}
		q := a.ring[a.rr]
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		a.slots--
		w.granted = true
		close(w.ch)
		if len(q.waiters) == 0 {
			// Drop the emptied connection from the ring; the next one
			// slides into this slot, so rr stays put.
			a.ring = append(a.ring[:a.rr], a.ring[a.rr+1:]...)
			delete(a.byConn, q.c)
		} else {
			a.rr++
		}
	}
}

// abandon removes w from c's queue if it has not been granted yet.
// Returns false when the grant already happened — the caller then owns
// a slot it no longer wants and must release it.
func (a *admission) abandon(c *conn, w *waiter) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if w.granted {
		return false
	}
	q := a.byConn[c]
	for i, x := range q.waiters {
		if x == w {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			break
		}
	}
	if len(q.waiters) == 0 {
		for i, x := range a.ring {
			if x == q {
				a.ring = append(a.ring[:i], a.ring[i+1:]...)
				if a.rr > i {
					a.rr--
				}
				break
			}
		}
		delete(a.byConn, c)
	}
	return true
}

// totalQueued reports how many requests are waiting for a slot across
// all connections (tests poll this to sequence fairness scenarios
// deterministically).
func (a *admission) totalQueued() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, q := range a.ring {
		n += len(q.waiters)
	}
	return n
}
