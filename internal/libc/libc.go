// Package libc provides the two MiniC standard-library variants the
// paper contrasts (§3, "Library-level changes"):
//
//   - Uclibc: the baseline KLEE setup — ctype classification via a
//     precomputed lookup table (as in the real uClibc KLEE ships with)
//     and string functions written with early-exit loops.
//
//   - Verified: the -OVERIFY library — classification as branch-free
//     arithmetic over range comparisons (these collapse into select
//     chains under if-conversion), single-exit loops, and precondition
//     asserts that turn misuse into checkable crashes.
//
// Both variants implement the same contract; the differential tests
// assert they agree on every input.
package libc

import (
	"fmt"
	"strings"

	"overify/internal/lang"
)

// Kind selects a library variant.
type Kind int

// Library variants.
const (
	Uclibc Kind = iota
	Verified
)

// String names the variant.
func (k Kind) String() string {
	if k == Verified {
		return "verified-libc"
	}
	return "uclibc"
}

// Classification bits in the ctype table.
const (
	bitSpace = 1 << iota
	bitAlpha
	bitDigit
	bitUpper
	bitLower
	bitPunct
)

// ctypeTable renders the 256-entry classification table as a MiniC
// global initializer, mirroring uClibc's __ctype_b table.
func ctypeTable() string {
	var vals []string
	for c := 0; c < 256; c++ {
		v := 0
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == 11 || c == 12:
			v |= bitSpace
		}
		if c >= 'a' && c <= 'z' {
			v |= bitAlpha | bitLower
		}
		if c >= 'A' && c <= 'Z' {
			v |= bitAlpha | bitUpper
		}
		if c >= '0' && c <= '9' {
			v |= bitDigit
		}
		if (c >= '!' && c <= '/') || (c >= ':' && c <= '@') ||
			(c >= '[' && c <= '`') || (c >= '{' && c <= '~') {
			v |= bitPunct
		}
		vals = append(vals, fmt.Sprintf("%d", v))
	}
	return "const char CTYPE[256] = {" + strings.Join(vals, ",") + "};\n"
}

// common holds the functions that are identical in both variants:
// the bounded output sink every utility writes to.
const common = `
unsigned char OUT[128];
int OUTN;

void putch(int c) {
	if (OUTN < 128) {
		OUT[OUTN] = (unsigned char)c;
		OUTN = OUTN + 1;
	}
}

void putstr(unsigned char *s) {
	int i = 0;
	while (s[i] != 0) {
		putch((int)s[i]);
		i = i + 1;
	}
}
`

// uclibcSrc is the baseline library: table-driven ctype, early-exit
// string loops (the shape real libc code has).
var uclibcSrc = ctypeTable() + common + `
int isspace(int c) { return (int)CTYPE[c & 255] & 1; }
int isalpha(int c) { return ((int)CTYPE[c & 255] >> 1) & 1; }
int isdigit(int c) { return ((int)CTYPE[c & 255] >> 2) & 1; }
int isupper(int c) { return ((int)CTYPE[c & 255] >> 3) & 1; }
int islower(int c) { return ((int)CTYPE[c & 255] >> 4) & 1; }
int ispunct(int c) { return ((int)CTYPE[c & 255] >> 5) & 1; }
int isalnum(int c) { return isalpha(c) || isdigit(c); }

int toupper(int c) {
	if (islower(c)) {
		return c - 32;
	}
	return c;
}

int tolower(int c) {
	if (isupper(c)) {
		return c + 32;
	}
	return c;
}

int strlen_(unsigned char *s) {
	int n = 0;
	while (s[n] != 0) {
		n = n + 1;
	}
	return n;
}

int strcmp_(unsigned char *a, unsigned char *b) {
	int i = 0;
	while (a[i] != 0) {
		if (a[i] != b[i]) {
			return (int)a[i] - (int)b[i];
		}
		i = i + 1;
	}
	return (int)a[i] - (int)b[i];
}

int strncmp_(unsigned char *a, unsigned char *b, int n) {
	int i = 0;
	while (i < n) {
		if (a[i] != b[i]) {
			return (int)a[i] - (int)b[i];
		}
		if (a[i] == 0) {
			return 0;
		}
		i = i + 1;
	}
	return 0;
}

int strchr_(unsigned char *s, int c) {
	int i = 0;
	while (s[i] != 0) {
		if ((int)s[i] == c) {
			return i;
		}
		i = i + 1;
	}
	if (c == 0) {
		return i;
	}
	return -1;
}

int strrchr_(unsigned char *s, int c) {
	int i = 0;
	int last = -1;
	while (s[i] != 0) {
		if ((int)s[i] == c) {
			last = i;
		}
		i = i + 1;
	}
	return last;
}

void memset_(unsigned char *p, int c, int n) {
	int i = 0;
	while (i < n) {
		p[i] = (unsigned char)c;
		i = i + 1;
	}
}

void memcpy_(unsigned char *dst, unsigned char *src, int n) {
	int i = 0;
	while (i < n) {
		dst[i] = src[i];
		i = i + 1;
	}
}

int memcmp_(unsigned char *a, unsigned char *b, int n) {
	int i = 0;
	while (i < n) {
		if (a[i] != b[i]) {
			return (int)a[i] - (int)b[i];
		}
		i = i + 1;
	}
	return 0;
}

int atoi_(unsigned char *s) {
	int i = 0;
	int neg = 0;
	int v = 0;
	while (isspace((int)s[i])) {
		i = i + 1;
	}
	if (s[i] == '-') {
		neg = 1;
		i = i + 1;
	} else if (s[i] == '+') {
		i = i + 1;
	}
	while (isdigit((int)s[i])) {
		v = v * 10 + ((int)s[i] - '0');
		i = i + 1;
	}
	if (neg) {
		return -v;
	}
	return v;
}

int abs_(int v) {
	if (v < 0) {
		return -v;
	}
	return v;
}
`

// verifiedSrc is the -OVERIFY library: classification is pure arithmetic
// (collapses to selects), loops are single-exit, and preconditions are
// asserted so the verifier turns misuse into crashes (§3).
var verifiedSrc = common + `
int isspace(int c) {
	int k = c & 255;
	return (k == 32) | (k == 9) | (k == 10) | (k == 13) | (k == 11) | (k == 12);
}
int isupper(int c) {
	int k = c & 255;
	return (k >= 65) & (k <= 90);
}
int islower(int c) {
	int k = c & 255;
	return (k >= 97) & (k <= 122);
}
int isalpha(int c) { return isupper(c) | islower(c); }
int isdigit(int c) {
	int k = c & 255;
	return (k >= 48) & (k <= 57);
}
int isalnum(int c) { return isalpha(c) | isdigit(c); }
int ispunct(int c) {
	int k = c & 255;
	return ((k >= 33) & (k <= 47)) | ((k >= 58) & (k <= 64))
	     | ((k >= 91) & (k <= 96)) | ((k >= 123) & (k <= 126));
}

int toupper(int c) { return c - islower(c) * 32; }
int tolower(int c) { return c + isupper(c) * 32; }

int strlen_(unsigned char *s) {
	int n = 0;
	while (s[n] != 0) {
		n = n + 1;
	}
	return n;
}

int strcmp_(unsigned char *a, unsigned char *b) {
	int i = 0;
	while ((a[i] != 0) & (a[i] == b[i])) {
		i = i + 1;
	}
	return (int)a[i] - (int)b[i];
}

int strncmp_(unsigned char *a, unsigned char *b, int n) {
	assert(n >= 0);
	// Branch-free full scan: the result is the first difference before
	// a NUL; the done flag freezes the accumulator afterwards. Every access
	// stays strictly below n (a plain & would evaluate a[n]).
	int i = 0;
	int res = 0;
	int done = 0;
	while (i < n) {
		int av = (int)a[i];
		int bv = (int)b[i];
		int d = av - bv;
		res = res + (1 - done) * d * (res == 0);
		done = done | (av == 0) | (d != 0);
		i = i + 1;
	}
	return res;
}

int strchr_(unsigned char *s, int c) {
	int i = 0;
	while ((s[i] != 0) & ((int)s[i] != c)) {
		i = i + 1;
	}
	if ((int)s[i] == c) {
		return i;
	}
	return -1;
}

int strrchr_(unsigned char *s, int c) {
	int i = 0;
	int last = -1;
	while (s[i] != 0) {
		int hit = (int)s[i] == c;
		last = hit * i + (1 - hit) * last;
		i = i + 1;
	}
	return last;
}

void memset_(unsigned char *p, int c, int n) {
	assert(n >= 0);
	int i = 0;
	while (i < n) {
		p[i] = (unsigned char)c;
		i = i + 1;
	}
}

void memcpy_(unsigned char *dst, unsigned char *src, int n) {
	assert(n >= 0);
	int i = 0;
	while (i < n) {
		dst[i] = src[i];
		i = i + 1;
	}
}

int memcmp_(unsigned char *a, unsigned char *b, int n) {
	assert(n >= 0);
	// Branch-free full scan; see strncmp_ for the accumulator scheme.
	int i = 0;
	int res = 0;
	while (i < n) {
		int d = (int)a[i] - (int)b[i];
		res = res + d * (res == 0);
		i = i + 1;
	}
	return res;
}

int atoi_(unsigned char *s) {
	int i = 0;
	int neg = 0;
	int v = 0;
	while (isspace((int)s[i])) {
		i = i + 1;
	}
	int sign = (s[i] == '-') | (s[i] == '+');
	neg = s[i] == '-';
	i = i + sign;
	while (isdigit((int)s[i])) {
		v = v * 10 + ((int)s[i] - '0');
		i = i + 1;
	}
	return v - 2 * neg * v;
}

int abs_(int v) {
	int neg = v < 0;
	return v - 2 * neg * v;
}
`

// Source returns the MiniC source of a library variant.
func Source(kind Kind) string {
	if kind == Verified {
		return verifiedSrc
	}
	return uclibcSrc
}

// Parse parses a library variant (cached).
func Parse(kind Kind) (*lang.File, error) {
	return lang.Parse(Source(kind))
}

// FunctionNames lists the public functions both variants provide, for
// contract tests.
func FunctionNames() []string {
	return []string{
		"isspace", "isalpha", "isdigit", "isupper", "islower", "ispunct", "isalnum",
		"toupper", "tolower",
		"strlen_", "strcmp_", "strncmp_", "strchr_", "strrchr_",
		"memset_", "memcpy_", "memcmp_",
		"atoi_", "abs_", "putch", "putstr",
	}
}
