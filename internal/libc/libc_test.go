package libc_test

import (
	"fmt"
	"testing"

	"overify/internal/frontend"
	"overify/internal/interp"
	"overify/internal/ir"
	"overify/internal/lang"
	"overify/internal/libc"
)

// machineFor builds an interpreter over one libc variant plus an
// optional driver source.
func machineFor(t *testing.T, kind libc.Kind, extra string) *interp.Machine {
	t.Helper()
	files := []*lang.File{}
	lf, err := libc.Parse(kind)
	if err != nil {
		t.Fatalf("parse %s: %v", kind, err)
	}
	files = append(files, lf)
	if extra != "" {
		ef, err := lang.Parse(extra)
		if err != nil {
			t.Fatalf("parse extra: %v", err)
		}
		files = append(files, ef)
	}
	mod, err := frontend.LowerFiles("libc", files...)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return interp.NewMachine(mod, interp.Options{})
}

// TestCtypeContract: both variants agree with Go's own character
// classification on every byte value.
func TestCtypeContract(t *testing.T) {
	ref := map[string]func(c int) bool{
		"isspace": func(c int) bool {
			return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == 11 || c == 12
		},
		"isalpha": func(c int) bool {
			return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		},
		"isdigit": func(c int) bool { return c >= '0' && c <= '9' },
		"isupper": func(c int) bool { return c >= 'A' && c <= 'Z' },
		"islower": func(c int) bool { return c >= 'a' && c <= 'z' },
	}
	for _, kind := range []libc.Kind{libc.Uclibc, libc.Verified} {
		for name, want := range ref {
			m := machineFor(t, kind, "")
			for c := 0; c < 256; c++ {
				ret, err := m.Call(name, interp.IntVal(ir.I32, uint64(c)))
				if err != nil {
					t.Fatalf("%s/%s(%d): %v", kind, name, c, err)
				}
				got := ret.Bits != 0
				if got != want(c) {
					t.Errorf("%s: %s(%d) = %v, want %v", kind, name, c, got, want(c))
				}
			}
		}
	}
}

// TestCaseMappingContract: toupper/tolower agree across variants and
// with the reference for all bytes.
func TestCaseMappingContract(t *testing.T) {
	for _, kind := range []libc.Kind{libc.Uclibc, libc.Verified} {
		m := machineFor(t, kind, "")
		for c := 0; c < 256; c++ {
			up, err := m.Call("toupper", interp.IntVal(ir.I32, uint64(c)))
			if err != nil {
				t.Fatal(err)
			}
			wantUp := c
			if c >= 'a' && c <= 'z' {
				wantUp = c - 32
			}
			if int(int32(up.Bits)) != wantUp {
				t.Errorf("%s: toupper(%d) = %d, want %d", kind, c, int32(up.Bits), wantUp)
			}
			lo, err := m.Call("tolower", interp.IntVal(ir.I32, uint64(c)))
			if err != nil {
				t.Fatal(err)
			}
			wantLo := c
			if c >= 'A' && c <= 'Z' {
				wantLo = c + 32
			}
			if int(int32(lo.Bits)) != wantLo {
				t.Errorf("%s: tolower(%d) = %d, want %d", kind, c, int32(lo.Bits), wantLo)
			}
		}
	}
}

// TestStringContract exercises the string functions on shared vectors
// and demands identical results from both variants.
func TestStringContract(t *testing.T) {
	type call struct {
		fn   string
		a, b string
		n    int64
		want int64
	}
	calls := []call{
		{fn: "strlen_", a: "", want: 0},
		{fn: "strlen_", a: "hello", want: 5},
		{fn: "strcmp_", a: "abc", b: "abc", want: 0},
		{fn: "strcmp_", a: "abc", b: "abd", want: -1},
		{fn: "strcmp_", a: "abd", b: "abc", want: 1},
		{fn: "strcmp_", a: "ab", b: "abc", want: -'c'},
		{fn: "strncmp_", a: "abcX", b: "abcY", n: 3, want: 0},
		{fn: "strncmp_", a: "abcX", b: "abcY", n: 4, want: int64('X') - int64('Y')},
		{fn: "strchr_", a: "hello", n: 'l', want: 2},
		{fn: "strchr_", a: "hello", n: 'z', want: -1},
		{fn: "strchr_", a: "hello", n: 0, want: 5},
		{fn: "strrchr_", a: "hello", n: 'l', want: 3},
		{fn: "strrchr_", a: "hello", n: 'z', want: -1},
		{fn: "atoi_", a: "42", want: 42},
		{fn: "atoi_", a: "  -17x", want: -17},
		{fn: "atoi_", a: "+9", want: 9},
		{fn: "atoi_", a: "junk", want: 0},
		{fn: "abs_", n: -5, want: 5},
		{fn: "abs_", n: 5, want: 5},
	}
	for _, kind := range []libc.Kind{libc.Uclibc, libc.Verified} {
		for _, tc := range calls {
			m := machineFor(t, kind, "")
			var args []interp.Value
			if tc.fn == "abs_" {
				args = []interp.Value{interp.IntVal(ir.I32, uint64(tc.n))}
			} else {
				buf := interp.ByteObject("a", append([]byte(tc.a), 0))
				args = []interp.Value{interp.PtrVal(buf, 0)}
				switch tc.fn {
				case "strcmp_":
					b2 := interp.ByteObject("b", append([]byte(tc.b), 0))
					args = append(args, interp.PtrVal(b2, 0))
				case "strncmp_":
					b2 := interp.ByteObject("b", append([]byte(tc.b), 0))
					args = append(args, interp.PtrVal(b2, 0), interp.IntVal(ir.I32, uint64(tc.n)))
				case "strchr_", "strrchr_":
					args = append(args, interp.IntVal(ir.I32, uint64(tc.n)))
				}
			}
			ret, err := m.Call(tc.fn, args...)
			if err != nil {
				t.Fatalf("%s/%s(%q,%q,%d): %v", kind, tc.fn, tc.a, tc.b, tc.n, err)
			}
			got := ir.SignExtend(32, ret.Bits)
			// Sign of strcmp matters, not magnitude.
			if tc.fn == "strcmp_" || tc.fn == "strncmp_" {
				if sign(got) != sign(tc.want) {
					t.Errorf("%s: %s(%q,%q) = %d, want sign %d", kind, tc.fn, tc.a, tc.b, got, tc.want)
				}
				continue
			}
			if got != tc.want {
				t.Errorf("%s: %s(%q,%q,%d) = %d, want %d", kind, tc.fn, tc.a, tc.b, tc.n, got, tc.want)
			}
		}
	}
}

func sign(v int64) int {
	switch {
	case v < 0:
		return -1
	case v > 0:
		return 1
	}
	return 0
}

// TestMemFunctions checks memset/memcpy/memcmp through a MiniC driver.
func TestMemFunctions(t *testing.T) {
	driver := `
	int drive(void) {
		unsigned char a[8];
		unsigned char b[8];
		memset_(a, 7, 8);
		if (a[0] != 7 || a[7] != 7) { return 1; }
		memcpy_(b, a, 8);
		if (memcmp_(a, b, 8) != 0) { return 2; }
		b[3] = 9;
		if (memcmp_(a, b, 8) == 0) { return 3; }
		if (memcmp_(a, b, 3) != 0) { return 4; }
		return 0;
	}`
	for _, kind := range []libc.Kind{libc.Uclibc, libc.Verified} {
		m := machineFor(t, kind, driver)
		ret, err := m.Call("drive")
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if ret.Bits != 0 {
			t.Errorf("%s: drive() = %d, want 0", kind, ret.Bits)
		}
	}
}

// TestOutputSink checks the putch/putstr bounded sink.
func TestOutputSink(t *testing.T) {
	driver := `
	int drive(void) {
		putstr((unsigned char*)"hi ");
		putch('!');
		return OUTN;
	}`
	for _, kind := range []libc.Kind{libc.Uclibc, libc.Verified} {
		m := machineFor(t, kind, driver)
		ret, err := m.Call("drive")
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if ret.Bits != 4 {
			t.Errorf("%s: OUTN = %d, want 4", kind, ret.Bits)
		}
		out, _ := m.GlobalData("OUT")
		got := fmt.Sprintf("%c%c%c%c", out[0], out[1], out[2], out[3])
		if got != "hi !" {
			t.Errorf("%s: OUT = %q", kind, got)
		}
	}
}

// TestVerifiedPreconditions: the verified libc's asserts turn misuse
// into traps instead of silent misbehavior.
func TestVerifiedPreconditions(t *testing.T) {
	driver := `
	int drive(void) {
		unsigned char a[4];
		memset_(a, 1, -3);
		return 0;
	}`
	m := machineFor(t, libc.Verified, driver)
	if _, err := m.Call("drive"); err == nil {
		t.Error("memset_ with negative n must trap in the verified libc")
	}
}

func TestFunctionNamesExist(t *testing.T) {
	for _, kind := range []libc.Kind{libc.Uclibc, libc.Verified} {
		lf, err := libc.Parse(kind)
		if err != nil {
			t.Fatal(err)
		}
		mod, err := frontend.LowerFiles("t", lf)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range libc.FunctionNames() {
			if mod.Func(name) == nil {
				t.Errorf("%s: missing %s", kind, name)
			}
		}
	}
}
