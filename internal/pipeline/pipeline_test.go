package pipeline_test

import (
	"testing"

	"overify/internal/frontend"
	"overify/internal/interp"
	"overify/internal/ir"
	"overify/internal/pipeline"
)

const wcSrc = `
int isspace(int c) {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == 11 || c == 12;
}
int isalpha(int c) {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}
int wc(unsigned char *str, int any) {
	int res = 0;
	int new_word = 1;
	for (unsigned char *p = str; *p; ++p) {
		if (isspace(*p) || (any && !isalpha(*p))) {
			new_word = 1;
		} else {
			if (new_word) {
				++res;
				new_word = 0;
			}
		}
	}
	return res;
}
`

func optimizedWc(t *testing.T, level pipeline.Level) *ir.Module {
	t.Helper()
	mod, err := frontend.Lower("wc", wcSrc)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	cfg := pipeline.LevelConfig(level)
	cfg.VerifyEachPass = true
	if _, err := pipeline.Optimize(mod, cfg); err != nil {
		t.Fatalf("%s: %v", level, err)
	}
	return mod
}

func runWcOn(t *testing.T, mod *ir.Module, input string, any int64) int64 {
	t.Helper()
	m := interp.NewMachine(mod, interp.Options{})
	buf := interp.ByteObject("input", append([]byte(input), 0))
	ret, err := m.Call("wc", interp.PtrVal(buf, 0), interp.IntVal(ir.I32, uint64(any)))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return ir.SignExtend(32, ret.Bits)
}

var wcCases = []struct {
	in   string
	any  int64
	want int64
}{
	{"", 0, 0},
	{"hello", 0, 1},
	{"hello world", 0, 2},
	{"  a  b  ", 0, 2},
	{"tab\tsep\nlines", 0, 3},
	{"a,b,c", 0, 1},
	{"a,b,c", 1, 3},
	{"x1y2z", 1, 3},
	{"...", 1, 0},
	{"word", 1, 1},
	{" \t\n", 0, 0},
	{"mixed CASE words", 0, 3},
}

// TestWcSemanticsAcrossLevels is the §2.3 equivalence check: the same
// program must behave identically at every optimization level.
func TestWcSemanticsAcrossLevels(t *testing.T) {
	for _, level := range []pipeline.Level{
		pipeline.O0, pipeline.O1, pipeline.O2, pipeline.O3, pipeline.OVerify,
	} {
		mod := optimizedWc(t, level)
		for _, tt := range wcCases {
			if got := runWcOn(t, mod, tt.in, tt.any); got != tt.want {
				t.Errorf("%s: wc(%q, %d) = %d, want %d", level, tt.in, tt.any, got, tt.want)
			}
		}
	}
}

// TestWcBranchReduction checks the structural claim behind Table 1: each
// level strictly reduces the number of conditional branches in wc, and
// -OVERIFY leaves only the loop back-edge test (Listing 2: "completely
// removes all branches from the loop").
func TestWcBranchReduction(t *testing.T) {
	branches := map[pipeline.Level]int{}
	for _, level := range []pipeline.Level{
		pipeline.O0, pipeline.O2, pipeline.O3, pipeline.OVerify,
	} {
		mod := optimizedWc(t, level)
		branches[level] = mod.Func("wc").NumBranches()
		t.Logf("%s: %d conditional branches in wc", level, branches[level])
	}
	// Note: -O2/-O3 may have *more* static branches inside wc than -O0
	// because inlining copies the callees' branches in; what shrinks is
	// the dynamic per-path work. The structural claims tested here are
	// the -OVERIFY ones.
	if !(branches[pipeline.O3] > branches[pipeline.OVerify]) {
		t.Errorf("expected -OVERIFY (%d) to have fewer branches than -O3 (%d)",
			branches[pipeline.OVerify], branches[pipeline.O3])
	}
	// The paper's Listing 2: only the loop-header branches remain. After
	// unswitching on `any` there are two loop copies, so allow up to 2.
	if branches[pipeline.OVerify] > 2 {
		t.Errorf("-OVERIFY left %d conditional branches in wc, want <= 2 (loop headers only)",
			branches[pipeline.OVerify])
	}
}

// TestPipelineStats sanity-checks the Table 3 counters.
func TestPipelineStats(t *testing.T) {
	mod, err := frontend.Lower("wc", wcSrc)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	cfg := pipeline.LevelConfig(pipeline.OVerify)
	cfg.VerifyEachPass = true
	res, err := pipeline.Optimize(mod, cfg)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	if res.Stats.FunctionsInlined < 2 {
		t.Errorf("FunctionsInlined = %d, want >= 2 (isspace and isalpha)", res.Stats.FunctionsInlined)
	}
	// The `any` branch is eliminated by if-conversion (Listing 2), which
	// is strictly better than unswitching it: no loop duplication, and a
	// single loop copy handles both values symbolically.
	if res.Stats.BranchesConverted < 3 {
		t.Errorf("BranchesConverted = %d, want >= 3", res.Stats.BranchesConverted)
	}
	if res.Stats.AllocasPromoted == 0 {
		t.Error("AllocasPromoted = 0, mem2reg did nothing")
	}
}
