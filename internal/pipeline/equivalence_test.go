package pipeline_test

import (
	"fmt"
	"testing"

	"overify/internal/core"
	"overify/internal/coreutils"
	"overify/internal/pipeline"
)

// The pass manager's contract is that its scheduling tricks are
// invisible: analysis caching, change-driven (function-skipping)
// fixpoints and per-function parallelism must emit byte-identical IR
// and identical Stats to the sequential fresh-analysis baseline at
// every level over the whole corpus. A missed invalidation, a skipped
// function that actually had work left, or a cross-function data race
// all surface here as an IR or Stats drift (VerifyEachPass localizes
// the guilty pass).

// equivalenceModes are the schedule corners compared against the
// baseline (analysis caching off, no function skipping, serial).
var equivalenceModes = []struct {
	name string
	cfg  func(*pipeline.Config)
}{
	{"cached", func(cfg *pipeline.Config) {}},
	{"parallel", func(cfg *pipeline.Config) { cfg.Jobs = 4 }},
}

func equivalencePrograms(t *testing.T) []coreutils.Program {
	t.Helper()
	progs := coreutils.All()
	if testing.Short() {
		progs = nil
		for _, name := range []string{"echo", "cat", "wc", "tr", "grep-v", "rev", "uniq", "seq"} {
			p, ok := coreutils.Get(name)
			if !ok {
				t.Fatalf("no corpus program %q", name)
			}
			progs = append(progs, p)
		}
	}
	// The examples from this repo's own tests ride along: wc is the
	// paper's Listing 1 and exercises every structural pass.
	progs = append(progs, coreutils.Program{Name: "wc-listing1", Src: wcSrc})
	return progs
}

func compileMode(t *testing.T, p coreutils.Program, level pipeline.Level, tweak func(*pipeline.Config)) (string, *pipeline.Result) {
	t.Helper()
	cfg := pipeline.LevelConfig(level)
	cfg.VerifyEachPass = true
	tweak(&cfg)
	c, err := core.CompileWithConfig(p.Name, p.Src, cfg, core.DefaultLibc(level))
	if err != nil {
		t.Fatalf("%s at %s: %v", p.Name, level, err)
	}
	return c.Mod.String(), c.Result
}

var equivalenceLevels = []pipeline.Level{
	pipeline.O0, pipeline.O1, pipeline.O2, pipeline.O3, pipeline.OVerify,
}

// TestPipelineEquivalence: for every level and program, the cached and
// parallel schedules must match the fresh-analysis sequential baseline
// exactly. Subtests are named <level>/<mode> so CI can matrix over
// -run 'TestPipelineEquivalence/<level>/<mode>'.
func TestPipelineEquivalence(t *testing.T) {
	progs := equivalencePrograms(t)
	for _, level := range equivalenceLevels {
		level := level
		t.Run(level.String(), func(t *testing.T) {
			type baseline struct {
				ir  string
				res *pipeline.Result
			}
			bases := make(map[string]baseline, len(progs))
			for _, p := range progs {
				irText, res := compileMode(t, p, level, func(cfg *pipeline.Config) {
					cfg.NoAnalysisCache = true
					cfg.NoFuncSkip = true
				})
				bases[p.Name] = baseline{ir: irText, res: res}
			}
			for _, mode := range equivalenceModes {
				mode := mode
				t.Run(mode.name, func(t *testing.T) {
					for _, p := range progs {
						irText, res := compileMode(t, p, level, mode.cfg)
						base := bases[p.Name]
						if irText != base.ir {
							t.Errorf("%s: %s IR differs from baseline (%d vs %d bytes)",
								p.Name, mode.name, len(irText), len(base.ir))
						}
						if res.Stats != base.res.Stats {
							t.Errorf("%s: %s stats differ:\n  got  %+v\n  want %+v",
								p.Name, mode.name, res.Stats, base.res.Stats)
						}
						if res.PassInvocations > base.res.PassInvocations {
							t.Errorf("%s: %s ran %d invocations, baseline only %d",
								p.Name, mode.name, res.PassInvocations, base.res.PassInvocations)
						}
					}
				})
			}
		})
	}
}

// TestWorklistRunsFewerInvocations is the acceptance criterion on the
// change-driven fixpoints: over the corpus at -OVERIFY, the worklist
// schedule must run strictly fewer pass invocations than the
// global-round schedule it replaced, report the skips it made, and the
// analysis cache must actually hit.
func TestWorklistRunsFewerInvocations(t *testing.T) {
	progs := equivalencePrograms(t)
	var worklist, legacy, skipped int
	var hits int64
	for _, p := range progs {
		_, res := compileMode(t, p, pipeline.OVerify, func(cfg *pipeline.Config) {})
		worklist += res.PassInvocations
		skipped += res.SkippedFuncRuns
		hits += res.Analysis.DomHits + res.Analysis.LoopHits
		_, legacyRes := compileMode(t, p, pipeline.OVerify, func(cfg *pipeline.Config) {
			cfg.NoFuncSkip = true
		})
		legacy += legacyRes.PassInvocations
	}
	t.Logf("-OVERIFY over %d programs: %d invocations (worklist) vs %d (global rounds), %d skipped, %d analysis-cache hits",
		len(progs), worklist, legacy, skipped, hits)
	if worklist >= legacy {
		t.Errorf("worklist ran %d invocations, want strictly fewer than the global-round schedule's %d", worklist, legacy)
	}
	if skipped == 0 {
		t.Error("worklist reported no skipped function runs")
	}
	if hits == 0 {
		t.Error("analysis cache never hit")
	}
}

// TestPassTimingsAccounted: every pass that ran appears in the
// per-pass breakdown, and the breakdown's totals reconcile with the
// Result's counters.
func TestPassTimingsAccounted(t *testing.T) {
	p, ok := coreutils.Get("wc")
	if !ok {
		t.Fatal("no wc program")
	}
	_, res := compileMode(t, p, pipeline.OVerify, func(cfg *pipeline.Config) {})
	if len(res.PassTimings) == 0 {
		t.Fatal("no per-pass timings reported")
	}
	sumInv, sumSkip := 0, 0
	seen := map[string]bool{}
	for _, pm := range res.PassTimings {
		if seen[pm.Name] {
			t.Errorf("pass %s reported twice", pm.Name)
		}
		seen[pm.Name] = true
		sumInv += pm.Invocations
		sumSkip += pm.Skipped
	}
	if sumInv != res.PassInvocations {
		t.Errorf("per-pass invocations sum to %d, Result says %d", sumInv, res.PassInvocations)
	}
	if sumSkip != res.SkippedFuncRuns {
		t.Errorf("per-pass skips sum to %d, Result says %d", sumSkip, res.SkippedFuncRuns)
	}
	for _, name := range []string{"mem2reg", "inline", "ifconvert", "checks", "annotate"} {
		if !seen[name] {
			t.Errorf("pass %s missing from timings (have %v)", name, fmt.Sprint(res.PassTimings))
		}
	}
}
