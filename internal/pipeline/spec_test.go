package pipeline_test

import (
	"reflect"
	"strings"
	"testing"

	"overify/internal/frontend"
	"overify/internal/ir"
	"overify/internal/pipeline"
)

func lowerWc(t *testing.T) *ir.Module {
	t.Helper()
	mod, err := frontend.Lower("wc", wcSrc)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return mod
}

// TestSpecStringRoundTrip: every level's canonical spec must survive
// spec -> text -> ParsePipeline -> spec unchanged, so -passes= can
// express exactly what the levels run.
func TestSpecStringRoundTrip(t *testing.T) {
	for _, level := range []pipeline.Level{
		pipeline.O1, pipeline.O2, pipeline.O3, pipeline.OVerify,
	} {
		spec := pipeline.Passes(pipeline.LevelConfig(level))
		text := spec.String()
		back, err := pipeline.ParsePipeline(text)
		if err != nil {
			t.Fatalf("%s: ParsePipeline(%q): %v", level, text, err)
		}
		if !reflect.DeepEqual(spec, back) {
			t.Errorf("%s: round trip drifted:\n  spec %+v\n  text %q\n  back %+v", level, spec, text, back)
		}
		if _, err := back.Build(); err != nil {
			t.Errorf("%s: Build after round trip: %v", level, err)
		}
	}
}

// TestParsePipelineForms covers the grammar corners.
func TestParsePipelineForms(t *testing.T) {
	good := []string{
		"mem2reg",
		"mem2reg,simplify,dce",
		"fixpoint(ifconvert,simplify)",
		"fixpoint:3(jumpthread,cse),annotate",
		"mem2reg, fixpoint:12(ifconvert, simplify, cse, simplifycfg, dce), checks",
		"fixpoint(dce) , mem2reg",
	}
	for _, text := range good {
		spec, err := pipeline.ParsePipeline(text)
		if err != nil {
			t.Errorf("ParsePipeline(%q): %v", text, err)
			continue
		}
		if _, err := spec.Build(); err != nil {
			t.Errorf("Build(%q): %v", text, err)
		}
	}
	bad := map[string]string{
		"":                        "empty",
		"mem2reg,,dce":            "double comma",
		"bogus":                   "unknown pass",
		"fixpoint(mem2reg":        "unclosed",
		"fixpoint()":              "empty body",
		"fixpoint:0(dce)":         "zero rounds",
		"fixpoint:x(dce)":         "bad rounds",
		"fixpoint(fixpoint(dce))": "nested fixpoint",
		"fixpoint(dce)mem2reg":    "missing comma after fixpoint",
	}
	for text, why := range bad {
		if _, err := pipeline.ParsePipeline(text); err == nil {
			t.Errorf("ParsePipeline(%q) accepted (%s)", text, why)
		}
	}
}

// TestParsedPipelineCompiles: a hand-written -passes= pipeline drives a
// real compile through Config.Pipeline.
func TestParsedPipelineCompiles(t *testing.T) {
	spec, err := pipeline.ParsePipeline("mem2reg,fixpoint:6(ifconvert,simplify,cse,simplifycfg,dce)")
	if err != nil {
		t.Fatal(err)
	}
	mod := lowerWc(t)
	cfg := pipeline.LevelConfig(pipeline.OVerify)
	cfg.Pipeline = &spec
	cfg.VerifyEachPass = true
	res, err := pipeline.Optimize(mod, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PassesRun != len(spec.Stages) {
		t.Errorf("ran %d stages, spec has %d", res.PassesRun, len(spec.Stages))
	}
	names := make([]string, 0, len(res.PassTimings))
	for _, pm := range res.PassTimings {
		names = append(names, pm.Name)
	}
	for _, want := range []string{"mem2reg", "ifconvert", "dce"} {
		if !strings.Contains(strings.Join(names, ","), want) {
			t.Errorf("pass %s missing from timings %v", want, names)
		}
	}
}
