package pipeline

import (
	"fmt"
	"strconv"
	"strings"

	"overify/internal/passes"
)

// DefaultFixpointRounds is the round cap a textual "fixpoint(...)"
// stage gets when it does not spell one ("fixpoint:N(...)").
const DefaultFixpointRounds = 12

// Stage is one step of a declarative pipeline: either a single named
// pass or a fixpoint over a sequence of named passes. Stages are data,
// not code — the same spec prints as the -passes= textual form,
// round-trips through ParsePipeline, and instantiates real passes via
// Build.
type Stage struct {
	// Pass is the pass name for a single-pass stage ("" for fixpoint).
	Pass string
	// Fixpoint lists the body pass names of a fixpoint stage.
	Fixpoint []string
	// MaxRounds caps the fixpoint's rounds (fixpoint stages only).
	MaxRounds int
}

// PipelineSpec is an optimization pipeline as data. pipeline.Passes
// produces one per level; -passes= parses one from text.
type PipelineSpec struct {
	Stages []Stage
}

// String renders the spec in the -passes= syntax, e.g.
// "mem2reg,fixpoint:12(ifconvert,simplify,cse,simplifycfg,dce)".
func (s PipelineSpec) String() string {
	var sb strings.Builder
	for i, st := range s.Stages {
		if i > 0 {
			sb.WriteByte(',')
		}
		if st.Pass != "" {
			sb.WriteString(st.Pass)
			continue
		}
		fmt.Fprintf(&sb, "fixpoint:%d(%s)", st.MaxRounds, strings.Join(st.Fixpoint, ","))
	}
	return sb.String()
}

// ParsePipeline parses the -passes= syntax:
//
//	pipeline := stage ("," stage)*
//	stage    := pass-name | "fixpoint" [":" rounds] "(" pass-name ("," pass-name)* ")"
//
// Pass names are validated against the pass registry; fixpoints do not
// nest. An empty string is an error (spell an empty pipeline as a
// custom Config instead).
func ParsePipeline(text string) (PipelineSpec, error) {
	var spec PipelineSpec
	rest := strings.TrimSpace(text)
	if rest == "" {
		return spec, fmt.Errorf("pipeline: empty -passes= pipeline")
	}
	for len(rest) > 0 {
		rest = strings.TrimSpace(rest)
		var stage string
		if strings.HasPrefix(rest, "fixpoint") {
			close := strings.IndexByte(rest, ')')
			if close < 0 {
				return spec, fmt.Errorf("pipeline: unclosed fixpoint in %q", text)
			}
			stage, rest = rest[:close+1], strings.TrimSpace(rest[close+1:])
			if rest != "" {
				if !strings.HasPrefix(rest, ",") {
					return spec, fmt.Errorf("pipeline: expected ',' after %q", stage)
				}
				rest = rest[1:]
			}
		} else if i := strings.IndexByte(rest, ','); i >= 0 {
			stage, rest = rest[:i], rest[i+1:]
		} else {
			stage, rest = rest, ""
		}
		st, err := parseStage(strings.TrimSpace(stage))
		if err != nil {
			return spec, err
		}
		spec.Stages = append(spec.Stages, st)
	}
	return spec, nil
}

func parseStage(stage string) (Stage, error) {
	if stage == "" {
		return Stage{}, fmt.Errorf("pipeline: empty stage (double comma?)")
	}
	if !strings.HasPrefix(stage, "fixpoint") {
		if err := checkPassName(stage); err != nil {
			return Stage{}, err
		}
		return Stage{Pass: stage}, nil
	}
	head, body, ok := strings.Cut(stage, "(")
	if !ok || !strings.HasSuffix(body, ")") {
		return Stage{}, fmt.Errorf("pipeline: malformed fixpoint stage %q", stage)
	}
	body = strings.TrimSuffix(body, ")")
	rounds := DefaultFixpointRounds
	if colon := strings.TrimPrefix(head, "fixpoint"); colon != "" {
		n, err := strconv.Atoi(strings.TrimPrefix(colon, ":"))
		if err != nil || !strings.HasPrefix(colon, ":") || n <= 0 {
			return Stage{}, fmt.Errorf("pipeline: bad fixpoint round count in %q", stage)
		}
		rounds = n
	}
	st := Stage{MaxRounds: rounds}
	for _, name := range strings.Split(body, ",") {
		name = strings.TrimSpace(name)
		if strings.HasPrefix(name, "fixpoint") {
			return Stage{}, fmt.Errorf("pipeline: fixpoints do not nest in %q", stage)
		}
		if err := checkPassName(name); err != nil {
			return Stage{}, err
		}
		st.Fixpoint = append(st.Fixpoint, name)
	}
	if len(st.Fixpoint) == 0 {
		return Stage{}, fmt.Errorf("pipeline: empty fixpoint body in %q", stage)
	}
	return st, nil
}

func checkPassName(name string) error {
	_, err := passes.ByName(name)
	return err
}

// Build instantiates the spec into runnable passes.
func (s PipelineSpec) Build() ([]passes.Pass, error) {
	seq := make([]passes.Pass, 0, len(s.Stages))
	for _, st := range s.Stages {
		if st.Pass != "" {
			p, err := passes.ByName(st.Pass)
			if err != nil {
				return nil, err
			}
			seq = append(seq, p)
			continue
		}
		body := make([]passes.Pass, 0, len(st.Fixpoint))
		for _, name := range st.Fixpoint {
			p, err := passes.ByName(name)
			if err != nil {
				return nil, err
			}
			body = append(body, p)
		}
		rounds := st.MaxRounds
		if rounds <= 0 {
			rounds = DefaultFixpointRounds
		}
		seq = append(seq, passes.Fixpoint(rounds, body...))
	}
	return seq, nil
}
