package pipeline

import (
	"fmt"
	"strconv"
	"strings"

	"overify/internal/ir"
	"overify/internal/passes"
)

// DefaultFixpointRounds is the round cap a textual "fixpoint(...)"
// stage gets when it does not spell one ("fixpoint:N(...)").
const DefaultFixpointRounds = 12

// Stage is one step of a declarative pipeline: either a single named
// pass or a fixpoint over a sequence of named passes. Stages are data,
// not code — the same spec prints as the -passes= textual form,
// round-trips through ParsePipeline, and instantiates real passes via
// Build.
type Stage struct {
	// Pass is the pass name for a single-pass stage ("" for fixpoint).
	Pass string
	// Fixpoint lists the body pass names of a fixpoint stage.
	Fixpoint []string
	// MaxRounds caps the fixpoint's rounds (fixpoint stages only).
	MaxRounds int
	// Checks is the kept-check subset a slice/loopsummary stage
	// targets (zero: all checks). It renders as a ':'-annotation —
	// "slice:div-by-zero+bounds" — so the spec string, and therefore
	// the verdict-store key and any spec fingerprint, captures the
	// slice configuration instead of leaving it to ride Config fields
	// outside the rendered pipeline.
	Checks ir.CheckSet
}

// PipelineSpec is an optimization pipeline as data. pipeline.Passes
// produces one per level; -passes= parses one from text.
type PipelineSpec struct {
	Stages []Stage
}

// String renders the spec in the -passes= syntax, e.g.
// "mem2reg,fixpoint:12(ifconvert,simplify,cse,simplifycfg,dce)".
func (s PipelineSpec) String() string {
	var sb strings.Builder
	for i, st := range s.Stages {
		if i > 0 {
			sb.WriteByte(',')
		}
		if st.Pass != "" {
			sb.WriteString(st.Pass)
			if st.Checks != ir.AllChecks {
				sb.WriteByte(':')
				// '+' joins kinds because ',' separates stages.
				sb.WriteString(strings.ReplaceAll(st.Checks.String(), ",", "+"))
			}
			continue
		}
		fmt.Fprintf(&sb, "fixpoint:%d(%s)", st.MaxRounds, strings.Join(st.Fixpoint, ","))
	}
	return sb.String()
}

// ParsePipeline parses the -passes= syntax:
//
//	pipeline := stage ("," stage)*
//	stage    := pass-name | "fixpoint" [":" rounds] "(" pass-name ("," pass-name)* ")"
//
// Pass names are validated against the pass registry; fixpoints do not
// nest. An empty string is an error (spell an empty pipeline as a
// custom Config instead).
func ParsePipeline(text string) (PipelineSpec, error) {
	var spec PipelineSpec
	rest := strings.TrimSpace(text)
	if rest == "" {
		return spec, fmt.Errorf("pipeline: empty -passes= pipeline")
	}
	for len(rest) > 0 {
		rest = strings.TrimSpace(rest)
		var stage string
		if strings.HasPrefix(rest, "fixpoint") {
			close := strings.IndexByte(rest, ')')
			if close < 0 {
				return spec, fmt.Errorf("pipeline: unclosed fixpoint in %q", text)
			}
			stage, rest = rest[:close+1], strings.TrimSpace(rest[close+1:])
			if rest != "" {
				if !strings.HasPrefix(rest, ",") {
					return spec, fmt.Errorf("pipeline: expected ',' after %q", stage)
				}
				rest = rest[1:]
			}
		} else if i := strings.IndexByte(rest, ','); i >= 0 {
			stage, rest = rest[:i], rest[i+1:]
		} else {
			stage, rest = rest, ""
		}
		st, err := parseStage(strings.TrimSpace(stage))
		if err != nil {
			return spec, err
		}
		spec.Stages = append(spec.Stages, st)
	}
	return spec, nil
}

func parseStage(stage string) (Stage, error) {
	if stage == "" {
		return Stage{}, fmt.Errorf("pipeline: empty stage (double comma?)")
	}
	if !strings.HasPrefix(stage, "fixpoint") {
		if name, annot, ok := strings.Cut(stage, ":"); ok {
			if name != "slice" && name != "loopsummary" {
				return Stage{}, fmt.Errorf("pipeline: only slice/loopsummary stages take a check-set annotation, not %q", stage)
			}
			if annot == "" {
				return Stage{}, fmt.Errorf("pipeline: empty check-set annotation in %q", stage)
			}
			set, err := ir.ParseCheckSet(strings.ReplaceAll(annot, "+", ","))
			if err != nil {
				return Stage{}, fmt.Errorf("pipeline: %q: %w", stage, err)
			}
			return Stage{Pass: name, Checks: set}, nil
		}
		if err := checkPassName(stage); err != nil {
			return Stage{}, err
		}
		return Stage{Pass: stage}, nil
	}
	head, body, ok := strings.Cut(stage, "(")
	if !ok || !strings.HasSuffix(body, ")") {
		return Stage{}, fmt.Errorf("pipeline: malformed fixpoint stage %q", stage)
	}
	body = strings.TrimSuffix(body, ")")
	rounds := DefaultFixpointRounds
	if colon := strings.TrimPrefix(head, "fixpoint"); colon != "" {
		n, err := strconv.Atoi(strings.TrimPrefix(colon, ":"))
		if err != nil || !strings.HasPrefix(colon, ":") || n <= 0 {
			return Stage{}, fmt.Errorf("pipeline: bad fixpoint round count in %q", stage)
		}
		rounds = n
	}
	st := Stage{MaxRounds: rounds}
	for _, name := range strings.Split(body, ",") {
		name = strings.TrimSpace(name)
		if strings.HasPrefix(name, "fixpoint") {
			return Stage{}, fmt.Errorf("pipeline: fixpoints do not nest in %q", stage)
		}
		if err := checkPassName(name); err != nil {
			return Stage{}, err
		}
		st.Fixpoint = append(st.Fixpoint, name)
	}
	if len(st.Fixpoint) == 0 {
		return Stage{}, fmt.Errorf("pipeline: empty fixpoint body in %q", stage)
	}
	return st, nil
}

func checkPassName(name string) error {
	_, err := passes.ByName(name)
	return err
}

// isSliceStage reports whether the stage runs the check-relevance
// machinery (and so is annotated with the kept-check subset).
func isSliceStage(st Stage) bool {
	return st.Pass == "slice" || st.Pass == "loopsummary"
}

// withSliceChecks resolves the effective kept-check subset of the
// spec's slice/loopsummary stages and canonicalizes: every such stage
// is annotated with the effective set, so the rendered spec — the
// verdict key's pipeline field and the autotuner's fingerprint — fully
// determines the slice configuration. Annotated stages win over the
// fallback (the legacy Config.SliceChecks field); stages that disagree
// with each other are an error, since the relevance analysis is
// computed once per module.
func (s PipelineSpec) withSliceChecks(fallback ir.CheckSet) (PipelineSpec, ir.CheckSet, error) {
	eff := ir.AllChecks
	found := false
	for _, st := range s.Stages {
		if !isSliceStage(st) || st.Checks == ir.AllChecks {
			continue
		}
		if found && eff != st.Checks {
			return s, 0, fmt.Errorf("pipeline: slice stages disagree on the kept-check subset (%s vs %s)", eff, st.Checks)
		}
		eff, found = st.Checks, true
	}
	if !found {
		eff = fallback
	}
	out := s
	copied := false
	for i, st := range s.Stages {
		if isSliceStage(st) && st.Checks != eff {
			if !copied {
				out.Stages = append([]Stage(nil), s.Stages...)
				copied = true
			}
			out.Stages[i].Checks = eff
		}
	}
	return out, eff, nil
}

// Build instantiates the spec into runnable passes.
func (s PipelineSpec) Build() ([]passes.Pass, error) {
	seq := make([]passes.Pass, 0, len(s.Stages))
	for _, st := range s.Stages {
		if st.Pass != "" {
			p, err := passes.ByName(st.Pass)
			if err != nil {
				return nil, err
			}
			seq = append(seq, p)
			continue
		}
		body := make([]passes.Pass, 0, len(st.Fixpoint))
		for _, name := range st.Fixpoint {
			p, err := passes.ByName(name)
			if err != nil {
				return nil, err
			}
			body = append(body, p)
		}
		rounds := st.MaxRounds
		if rounds <= 0 {
			rounds = DefaultFixpointRounds
		}
		seq = append(seq, passes.Fixpoint(rounds, body...))
	}
	return seq, nil
}
