// Package pipeline assembles the optimization passes into the build
// configurations the paper compares: -O0, -O1, -O2, -O3 (CPU-oriented
// cost models) and -OVERIFY / -OSYMBEX (verification-oriented). The
// pass *set* barely differs between -O3 and -OVERIFY — what changes is
// the cost model, which is the paper's point: "it adjusts cost values
// and parameters ... to optimize compilation for fast verification, not
// fast execution" (§3).
package pipeline

import (
	"fmt"
	"time"

	"overify/internal/ir"
	"overify/internal/passes"
)

// Level is an optimization level switch.
type Level int

// The build configurations of the paper's tables.
const (
	O0 Level = iota
	O1
	O2
	O3
	OVerify // the paper's -OVERIFY / -OSYMBEX prototype
)

var levelNames = [...]string{"-O0", "-O1", "-O2", "-O3", "-OVERIFY"}

// String returns the flag spelling, e.g. "-O3".
func (l Level) String() string {
	if int(l) < len(levelNames) {
		return levelNames[l]
	}
	return fmt.Sprintf("-O(%d)", int(l))
}

// ParseLevel converts a flag spelling ("O0", "-O3", "-Overify",
// "-OSYMBEX") to a Level.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "O0", "-O0", "o0":
		return O0, nil
	case "O1", "-O1", "o1":
		return O1, nil
	case "O2", "-O2", "o2":
		return O2, nil
	case "O3", "-O3", "o3":
		return O3, nil
	case "OVERIFY", "-OVERIFY", "Overify", "-Overify", "overify",
		"OSYMBEX", "-OSYMBEX", "Osymbex", "-Osymbex", "osymbex":
		return OVerify, nil
	}
	return O0, fmt.Errorf("pipeline: unknown optimization level %q", s)
}

// CPUCost is the cost model a CPU-oriented -O2/-O3 build uses: branches
// are cheap (~1 cycle when predicted), so speculation is only worth a
// couple of instructions; inlining and unrolling are bounded to protect
// the instruction cache.
func CPUCost() passes.CostModel {
	return passes.CostModel{
		BranchCost:        1,
		SpeculationBudget: 2,
		InlineThreshold:   40,
		InlineGrowthCap:   800,
		InlineRounds:      4,
		UnrollMaxTrip:     8,
		UnrollGrowthCap:   256,
		UnswitchMaxSize:   64,
		UnswitchMaxClones: 2,
	}
}

// VerifyCost is the -OVERIFY cost model: a conditional branch can double
// a symbolic executor's path count, so its effective cost is enormous;
// code size barely matters because the verifier pays per *executed path
// instruction*, not per cached code byte.
func VerifyCost() passes.CostModel {
	return passes.CostModel{
		BranchCost:        1000,
		SpeculationBudget: 400,
		InlineThreshold:   4000,
		InlineGrowthCap:   60000,
		InlineRounds:      12,
		UnrollMaxTrip:     64,
		UnrollGrowthCap:   20000,
		UnswitchMaxSize:   1200,
		UnswitchMaxClones: 24,
	}
}

// Config selects the passes and parameters for one compilation.
type Config struct {
	Level Level
	Cost  passes.CostModel

	// Checks inserts runtime checks (§3 "Runtime checks"). Defaults to
	// on for OVerify in LevelConfig.
	Checks bool

	// AnnotateRanges preserves value-range metadata for the verifier
	// (§3 "Program annotations"). Defaults to on for OVerify.
	AnnotateRanges bool

	// Slice enables verification-aware program slicing: after the
	// level's regular stages (and after checks are inserted, so the
	// check set is visible in the IR), the slice/loopsummary passes
	// delete everything the kept checks cannot observe. Off by default
	// at every level — slicing changes the program, so it must be an
	// explicit opt-in that flows into the pipeline description (and
	// hence the verdict key).
	Slice bool

	// SliceChecks restricts the slice to one check subset (the
	// per-property verify mode); the zero value keeps all checks.
	SliceChecks ir.CheckSet

	// SliceEntry names the function whose call closure the slicer
	// preserves; "" defaults to umain.
	SliceEntry string

	// VerifyEachPass re-runs the IR verifier after every pass; used in
	// tests to localize pass bugs.
	VerifyEachPass bool

	// Pipeline overrides the level's canonical pass sequence (the
	// -passes= flag parses into this). nil uses Passes(cfg).
	Pipeline *PipelineSpec

	// Jobs bounds concurrent per-function pass executions inside the
	// pass manager; 0 or 1 compiles serially, negative uses one job
	// per CPU. Threaded from the same -j the symbolic-execution engine
	// uses.
	Jobs int

	// NoAnalysisCache disables the per-function Dom/Loops cache —
	// every pass recomputes fresh, the pre-manager behavior. The
	// equivalence suite uses this as its baseline.
	NoAnalysisCache bool

	// NoFuncSkip disables function-level change tracking in fixpoints,
	// reproducing the pre-manager global-round schedule (and its
	// invocation count).
	NoFuncSkip bool
}

// LevelConfig returns the canonical configuration for a level.
func LevelConfig(level Level) Config {
	cfg := Config{Level: level}
	switch level {
	case O0, O1, O2, O3:
		cfg.Cost = CPUCost()
	case OVerify:
		cfg.Cost = VerifyCost()
		cfg.Checks = true
		cfg.AnnotateRanges = true
	}
	return cfg
}

// Passes returns the pass pipeline for the configuration as data: the
// same spec the -passes= flag parses, prints and Build()s. The paper's
// point survives the representation change — every level is the same
// stage structure with different cost constants — and becomes visible:
// the -O3 and -OVERIFY specs differ only in fixpoint composition.
func Passes(cfg Config) PipelineSpec {
	cleanup := []Stage{
		{Pass: "simplify"}, {Pass: "cse"}, {Pass: "simplifycfg"}, {Pass: "dce"},
	}
	var spec PipelineSpec
	add := func(sts ...Stage) { spec.Stages = append(spec.Stages, sts...) }

	switch cfg.Level {
	case O0:
		// Nothing: the clang-style -O0 lowering is the program.
	case O1:
		add(Stage{Pass: "mem2reg"})
		add(cleanup...)
	case O2:
		add(Stage{Pass: "mem2reg"})
		add(cleanup...)
		add(Stage{Pass: "inline"}, Stage{Pass: "mem2reg"})
		add(cleanup...)
		add(Stage{Pass: "jumpthread"}, Stage{Pass: "licm"})
		add(cleanup...)
	case O3:
		add(Stage{Pass: "mem2reg"})
		add(cleanup...)
		add(Stage{Pass: "inline"}, Stage{Pass: "mem2reg"})
		add(cleanup...)
		// CPU-oriented loop work: unswitch (bounded), unroll (bounded),
		// and if-convert only tiny diamonds (SpeculationBudget ~2).
		add(Stage{MaxRounds: 6, Fixpoint: []string{
			"jumpthread", "licm", "unswitch", "unroll", "ifconvert",
			"simplify", "cse", "simplifycfg", "dce",
		}})
	case OVerify:
		add(Stage{Pass: "mem2reg"})
		add(cleanup...)
		// Aggressive inlining first: function specialization exposes the
		// constants and loads that the later passes need (§4).
		add(Stage{Pass: "inline"}, Stage{Pass: "mem2reg"})
		add(cleanup...)
		// Branch removal before loop restructuring: a branch folded into
		// a select (Listing 2) costs the verifier nothing per iteration,
		// whereas unswitching doubles the loop. Iterate to fixpoint —
		// each cleanup (load-CSE in particular) exposes new convertible
		// diamonds.
		add(Stage{MaxRounds: 12, Fixpoint: []string{
			"jumpthread", "licm", "ifconvert",
			"simplify", "cse", "simplifycfg", "dce",
		}})
		// Loop restructuring with verification-oriented budgets; unswitch
		// handles only the branches if-conversion could not remove
		// (side-effecting arms).
		add(Stage{MaxRounds: 8, Fixpoint: []string{
			"unroll", "licm", "unswitch", "ifconvert", "jumpthread",
			"simplify", "cse", "simplifycfg", "dce",
		}})
		if cfg.Checks {
			add(Stage{Pass: "checks"})
		}
		if cfg.AnnotateRanges {
			add(Stage{Pass: "annotate"})
		}
	}
	// The -OVERIFY slicing stage placement: slice after every
	// level-specific stage (checks included, so OpCheck roots exist in
	// the IR), clean up the cut edges, then summarize loops the slice
	// left bodiless and clean up again. The same stages apply at every
	// level — at -O0..-O3 the roots are the natively trapping
	// instructions alone. The cleanup deliberately omits dce: a
	// trapping instruction whose only consumers were sliced away is
	// dead by dce's reckoning but is exactly the root the slice
	// promised to keep.
	if cfg.Slice {
		sliceCleanup := []Stage{
			{Pass: "simplify"}, {Pass: "cse"}, {Pass: "simplifycfg"},
		}
		add(Stage{Pass: "slice", Checks: cfg.SliceChecks})
		add(sliceCleanup...)
		add(Stage{Pass: "loopsummary", Checks: cfg.SliceChecks})
		add(sliceCleanup...)
	}
	return spec
}

// Result reports what one pipeline run did.
type Result struct {
	Level Level
	// Spec is the rendered pass pipeline that actually ran (the level's
	// canonical spec, or the -passes override). It round-trips through
	// ParsePipeline, and is part of the verdict store's content key: a
	// different pipeline can produce different IR and different checks,
	// so it must produce a different key.
	Spec        string
	Stats       passes.Stats
	CompileTime time.Duration
	InstrsIn    int // static instruction count before
	InstrsOut   int // static instruction count after
	PassesRun   int // top-level stages run

	// PassInvocations counts function-level pass executions (module
	// passes count one per run); SkippedFuncRuns counts executions the
	// change-driven fixpoints avoided relative to the global-round
	// schedule.
	PassInvocations int
	SkippedFuncRuns int
	// PassTimings breaks invocations, changes, skips and wall time down
	// per pass name.
	PassTimings []passes.PassMetric
	// Analysis reports the Dom/Loops cache counters.
	Analysis passes.AnalysisStats
}

// Optimize runs the configured pipeline over the module in place,
// through the pass manager: analyses cached per function (unless
// cfg.NoAnalysisCache), fixpoints change-driven per function (unless
// cfg.NoFuncSkip), function passes parallel across functions when
// cfg.Jobs > 1. All four schedule corners emit byte-identical IR.
func Optimize(m *ir.Module, cfg Config) (*Result, error) {
	spec := Passes(cfg)
	if cfg.Pipeline != nil {
		spec = *cfg.Pipeline
	}
	// Canonicalize the slice configuration into the spec itself: the
	// rendered Result.Spec (and hence the verdict-store key) must
	// capture the kept-check subset, whether it arrived annotated on
	// the stages (-passes=...,slice:bounds,...) or on the legacy
	// Config.SliceChecks field.
	spec, sliceChecks, err := spec.withSliceChecks(cfg.SliceChecks)
	if err != nil {
		return nil, err
	}
	seq, err := spec.Build()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	cx := &passes.Context{
		Cost:        cfg.Cost,
		SliceChecks: sliceChecks,
		SliceEntry:  cfg.SliceEntry,
	}
	if !cfg.NoAnalysisCache {
		cx.EnableAnalysisCache()
	}
	mgr := &passes.Manager{Jobs: cfg.Jobs, NoSkip: cfg.NoFuncSkip}
	if cfg.VerifyEachPass {
		mgr.AfterPass = func(p passes.Pass) error {
			if err := ir.VerifyModule(m); err != nil {
				return fmt.Errorf("after pass %s: %w", p.Name(), err)
			}
			return nil
		}
	}
	res := &Result{Level: cfg.Level, Spec: spec.String(), InstrsIn: m.NumInstrs()}
	metrics, err := mgr.Run(m, seq, cx)
	if err != nil {
		return nil, err
	}
	if err := ir.VerifyModule(m); err != nil {
		return nil, fmt.Errorf("after %s pipeline: %w", cfg.Level, err)
	}
	res.finish(m, cx, metrics, start)
	return res, nil
}

// OptimizeAtLevel is a convenience for the canonical per-level config.
func OptimizeAtLevel(m *ir.Module, level Level) (*Result, error) {
	return Optimize(m, LevelConfig(level))
}

// OptimizeWithPasses runs an explicit pass list with an explicit cost
// model — the ablation harness (Table 2) uses this to measure passes in
// isolation. The list goes through the same manager (serial, cached).
func OptimizeWithPasses(m *ir.Module, cost passes.CostModel, seq []passes.Pass) (*Result, error) {
	start := time.Now()
	cx := passes.NewContext(cost)
	mgr := &passes.Manager{}
	res := &Result{InstrsIn: m.NumInstrs()}
	metrics, err := mgr.Run(m, seq, cx)
	if err != nil {
		return nil, err
	}
	if err := ir.VerifyModule(m); err != nil {
		return nil, fmt.Errorf("after custom pipeline: %w", err)
	}
	res.finish(m, cx, metrics, start)
	return res, nil
}

// finish folds the manager's metrics into the result.
func (res *Result) finish(m *ir.Module, cx *passes.Context, metrics *passes.RunMetrics, start time.Time) {
	res.Stats = cx.Stats
	res.CompileTime = time.Since(start)
	res.InstrsOut = m.NumInstrs()
	res.PassesRun = metrics.StagesRun
	res.PassInvocations = metrics.Invocations
	res.SkippedFuncRuns = metrics.Skipped
	res.PassTimings = metrics.Passes
	res.Analysis = cx.AnalysisStats()
}
