// Package pipeline assembles the optimization passes into the build
// configurations the paper compares: -O0, -O1, -O2, -O3 (CPU-oriented
// cost models) and -OVERIFY / -OSYMBEX (verification-oriented). The
// pass *set* barely differs between -O3 and -OVERIFY — what changes is
// the cost model, which is the paper's point: "it adjusts cost values
// and parameters ... to optimize compilation for fast verification, not
// fast execution" (§3).
package pipeline

import (
	"fmt"
	"time"

	"overify/internal/ir"
	"overify/internal/passes"
)

// Level is an optimization level switch.
type Level int

// The build configurations of the paper's tables.
const (
	O0 Level = iota
	O1
	O2
	O3
	OVerify // the paper's -OVERIFY / -OSYMBEX prototype
)

var levelNames = [...]string{"-O0", "-O1", "-O2", "-O3", "-OVERIFY"}

// String returns the flag spelling, e.g. "-O3".
func (l Level) String() string {
	if int(l) < len(levelNames) {
		return levelNames[l]
	}
	return fmt.Sprintf("-O(%d)", int(l))
}

// ParseLevel converts a flag spelling ("O0", "-O3", "-Overify",
// "-OSYMBEX") to a Level.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "O0", "-O0", "o0":
		return O0, nil
	case "O1", "-O1", "o1":
		return O1, nil
	case "O2", "-O2", "o2":
		return O2, nil
	case "O3", "-O3", "o3":
		return O3, nil
	case "OVERIFY", "-OVERIFY", "Overify", "-Overify", "overify",
		"OSYMBEX", "-OSYMBEX", "Osymbex", "-Osymbex", "osymbex":
		return OVerify, nil
	}
	return O0, fmt.Errorf("pipeline: unknown optimization level %q", s)
}

// CPUCost is the cost model a CPU-oriented -O2/-O3 build uses: branches
// are cheap (~1 cycle when predicted), so speculation is only worth a
// couple of instructions; inlining and unrolling are bounded to protect
// the instruction cache.
func CPUCost() passes.CostModel {
	return passes.CostModel{
		BranchCost:        1,
		SpeculationBudget: 2,
		InlineThreshold:   40,
		InlineGrowthCap:   800,
		InlineRounds:      4,
		UnrollMaxTrip:     8,
		UnrollGrowthCap:   256,
		UnswitchMaxSize:   64,
		UnswitchMaxClones: 2,
	}
}

// VerifyCost is the -OVERIFY cost model: a conditional branch can double
// a symbolic executor's path count, so its effective cost is enormous;
// code size barely matters because the verifier pays per *executed path
// instruction*, not per cached code byte.
func VerifyCost() passes.CostModel {
	return passes.CostModel{
		BranchCost:        1000,
		SpeculationBudget: 400,
		InlineThreshold:   4000,
		InlineGrowthCap:   60000,
		InlineRounds:      12,
		UnrollMaxTrip:     64,
		UnrollGrowthCap:   20000,
		UnswitchMaxSize:   1200,
		UnswitchMaxClones: 24,
	}
}

// Config selects the passes and parameters for one compilation.
type Config struct {
	Level Level
	Cost  passes.CostModel

	// Checks inserts runtime checks (§3 "Runtime checks"). Defaults to
	// on for OVerify in LevelConfig.
	Checks bool

	// AnnotateRanges preserves value-range metadata for the verifier
	// (§3 "Program annotations"). Defaults to on for OVerify.
	AnnotateRanges bool

	// VerifyEachPass re-runs the IR verifier after every pass; used in
	// tests to localize pass bugs.
	VerifyEachPass bool
}

// LevelConfig returns the canonical configuration for a level.
func LevelConfig(level Level) Config {
	cfg := Config{Level: level}
	switch level {
	case O0, O1, O2, O3:
		cfg.Cost = CPUCost()
	case OVerify:
		cfg.Cost = VerifyCost()
		cfg.Checks = true
		cfg.AnnotateRanges = true
	}
	return cfg
}

// Passes returns the pass sequence for the configuration.
func Passes(cfg Config) []passes.Pass {
	cleanup := func() []passes.Pass {
		return []passes.Pass{
			passes.Simplify(),
			passes.CSE(),
			passes.SimplifyCFG(),
			passes.DCE(),
		}
	}
	var seq []passes.Pass
	add := func(ps ...passes.Pass) { seq = append(seq, ps...) }

	switch cfg.Level {
	case O0:
		// Nothing: the clang-style -O0 lowering is the program.
	case O1:
		add(passes.Mem2Reg())
		add(cleanup()...)
	case O2:
		add(passes.Mem2Reg())
		add(cleanup()...)
		add(passes.Inline(), passes.Mem2Reg())
		add(cleanup()...)
		add(passes.JumpThread(), passes.LICM())
		add(cleanup()...)
	case O3:
		add(passes.Mem2Reg())
		add(cleanup()...)
		add(passes.Inline(), passes.Mem2Reg())
		add(cleanup()...)
		// CPU-oriented loop work: unswitch (bounded), unroll (bounded),
		// and if-convert only tiny diamonds (SpeculationBudget ~2).
		add(passes.Fixpoint(6,
			passes.JumpThread(), passes.LICM(),
			passes.Unswitch(), passes.Unroll(), passes.IfConvert(),
			passes.Simplify(), passes.CSE(), passes.SimplifyCFG(), passes.DCE(),
		))
	case OVerify:
		add(passes.Mem2Reg())
		add(cleanup()...)
		// Aggressive inlining first: function specialization exposes the
		// constants and loads that the later passes need (§4).
		add(passes.Inline(), passes.Mem2Reg())
		add(cleanup()...)
		// Branch removal before loop restructuring: a branch folded into
		// a select (Listing 2) costs the verifier nothing per iteration,
		// whereas unswitching doubles the loop. Iterate to fixpoint —
		// each cleanup (load-CSE in particular) exposes new convertible
		// diamonds.
		add(passes.Fixpoint(12,
			passes.JumpThread(), passes.LICM(), passes.IfConvert(),
			passes.Simplify(), passes.CSE(), passes.SimplifyCFG(), passes.DCE(),
		))
		// Loop restructuring with verification-oriented budgets; unswitch
		// handles only the branches if-conversion could not remove
		// (side-effecting arms).
		add(passes.Fixpoint(8,
			passes.Unroll(), passes.LICM(), passes.Unswitch(),
			passes.IfConvert(), passes.JumpThread(),
			passes.Simplify(), passes.CSE(), passes.SimplifyCFG(), passes.DCE(),
		))
		if cfg.Checks {
			add(passes.InsertChecks())
		}
		if cfg.AnnotateRanges {
			add(passes.Annotate())
		}
	}
	return seq
}

// Result reports what one pipeline run did.
type Result struct {
	Level       Level
	Stats       passes.Stats
	CompileTime time.Duration
	InstrsIn    int // static instruction count before
	InstrsOut   int // static instruction count after
	PassesRun   int
}

// Optimize runs the configured pipeline over the module in place.
func Optimize(m *ir.Module, cfg Config) (*Result, error) {
	start := time.Now()
	cx := &passes.Context{Cost: cfg.Cost}
	res := &Result{Level: cfg.Level, InstrsIn: m.NumInstrs()}
	for _, p := range Passes(cfg) {
		p.Run(m, cx)
		res.PassesRun++
		if cfg.VerifyEachPass {
			if err := ir.VerifyModule(m); err != nil {
				return nil, fmt.Errorf("after pass %s: %w", p.Name(), err)
			}
		}
	}
	if err := ir.VerifyModule(m); err != nil {
		return nil, fmt.Errorf("after %s pipeline: %w", cfg.Level, err)
	}
	res.Stats = cx.Stats
	res.CompileTime = time.Since(start)
	res.InstrsOut = m.NumInstrs()
	return res, nil
}

// OptimizeAtLevel is a convenience for the canonical per-level config.
func OptimizeAtLevel(m *ir.Module, level Level) (*Result, error) {
	return Optimize(m, LevelConfig(level))
}

// OptimizeWithPasses runs an explicit pass list with an explicit cost
// model — the ablation harness (Table 2) uses this to measure passes in
// isolation.
func OptimizeWithPasses(m *ir.Module, cost passes.CostModel, seq []passes.Pass) (*Result, error) {
	start := time.Now()
	cx := &passes.Context{Cost: cost}
	res := &Result{InstrsIn: m.NumInstrs()}
	for _, p := range seq {
		p.Run(m, cx)
		res.PassesRun++
	}
	if err := ir.VerifyModule(m); err != nil {
		return nil, fmt.Errorf("after custom pipeline: %w", err)
	}
	res.Stats = cx.Stats
	res.CompileTime = time.Since(start)
	res.InstrsOut = m.NumInstrs()
	return res, nil
}
