package pipeline

import (
	"reflect"
	"testing"
)

// FuzzPipelineSpecRoundTrip pins the -passes= grammar's round-trip
// property: any accepted input renders to a canonical string that
// reparses to the same spec and re-renders byte-identically. The
// autotuner's fingerprint memo and the verdict store's pipeline field
// both key on the rendered string, so a render/parse disagreement
// would silently split or merge cache entries.
func FuzzPipelineSpecRoundTrip(f *testing.F) {
	f.Add("mem2reg")
	f.Add("mem2reg,simplify,cse,simplifycfg,dce")
	f.Add("fixpoint(ifconvert,simplify)")
	f.Add("fixpoint:12(jumpthread,licm,ifconvert,simplify,cse,simplifycfg,dce)")
	f.Add("mem2reg,fixpoint:8(unroll,licm),checks,annotate")
	f.Add("checks,annotate,slice,simplify,cse,simplifycfg")
	f.Add("slice:bounds")
	f.Add("slice:div-by-zero+bounds,loopsummary:div-by-zero+bounds")
	f.Add("checks,annotate,slice:overflow,simplify,loopsummary:overflow")
	f.Add(" mem2reg , cse ")
	f.Add("fixpoint:1(dce)")
	f.Add("slice:all")
	f.Fuzz(func(t *testing.T, text string) {
		spec, err := ParsePipeline(text)
		if err != nil {
			return // rejected inputs are out of scope
		}
		rendered := spec.String()
		again, err := ParsePipeline(rendered)
		if err != nil {
			t.Fatalf("render of accepted input does not reparse: %q -> %q: %v", text, rendered, err)
		}
		if !reflect.DeepEqual(again, spec) {
			t.Fatalf("reparse differs from original spec:\n  input:    %q\n  rendered: %q", text, rendered)
		}
		if again.String() != rendered {
			t.Fatalf("render is not a fixed point: %q -> %q -> %q", text, rendered, again.String())
		}
	})
}
