package pipeline

import (
	"fmt"
	"time"

	"overify/internal/ir"
	"overify/internal/symex"
)

// VerifySpec describes one verification-time measurement: explore
// Entry(input, len) with InputBytes symbolic NUL-terminated bytes — the
// KLEE coreutils driver convention — under the given budget and worker
// count. This is the measurement API the benchmark harness uses for
// t_verify columns; it lives next to the optimization pipeline because
// t_verify is the quantity the -OVERIFY cost model optimizes for.
type VerifySpec struct {
	Entry      string           // entry function (default "umain")
	InputBytes int              // symbolic input size (default 4)
	Timeout    time.Duration    // exploration budget (0 = none)
	Workers    int              // engine workers (0/1 serial, -1 = NumCPU)
	Strategy   symex.SearchKind // exploration order (default DFS)
	Seed       int64            // random-path seed (0 = fixed default)
	MaxPaths   int64            // optional path cap
	MaxInstrs  int64            // optional deterministic instruction cap (0 = engine default)
	// MaxAssignments bounds total solver assignments tried (0 = off) —
	// the deterministic counterpart of Timeout for solver-heavy runs.
	MaxAssignments int64
}

// VerifyMeasurement is one timed verification run.
type VerifyMeasurement struct {
	Workers  int
	Strategy string
	Elapsed  time.Duration
	Paths    int64 // total paths (completed + errored + truncated)
	States   int64 // states whose execution began
	Covered  int   // distinct basic blocks executed
	Instrs   int64
	Queries  int64 // solver queries across all workers
	TimedOut bool
	Bugs     int

	// Assignments counts candidate values the solver's backtracking
	// search tried — the solver-budget currency, deterministic for a
	// serial run on any machine. Assignments + Instrs is the
	// autotuner's machine-independent "verify work units" objective.
	Assignments int64
	// Truncated counts paths killed by limits (MaxInstrs/MaxStates/
	// MaxPaths); a nonzero count means the run's bug set is not to be
	// trusted as the program's full verdict.
	Truncated int64
	// Report is the underlying engine report, kept so callers (the
	// autotuner's bug-parity gate in particular) can inspect the bug
	// list without re-running.
	Report *symex.Report
}

// MeasureVerify runs one symbolic verification of mod and reports the
// wall-clock and work counters.
func MeasureVerify(mod *ir.Module, spec VerifySpec) (*VerifyMeasurement, error) {
	if spec.Entry == "" {
		spec.Entry = "umain"
	}
	if spec.InputBytes <= 0 {
		spec.InputBytes = 4
	}
	eng := symex.NewEngine(mod, symex.Options{
		Timeout:   spec.Timeout,
		Workers:   spec.Workers,
		Strategy:  spec.Strategy,
		Seed:      spec.Seed,
		MaxPaths:       spec.MaxPaths,
		MaxInstrs:      spec.MaxInstrs,
		MaxAssignments: spec.MaxAssignments,
	})
	buf := eng.SymbolicBuffer("input", spec.InputBytes, true)
	length := eng.IntArg(ir.I32, uint64(spec.InputBytes))
	rep, err := eng.Run(spec.Entry, []symex.SymVal{buf, length}, nil)
	if err != nil {
		return nil, fmt.Errorf("measure %s: %w", spec.Entry, err)
	}
	return &VerifyMeasurement{
		Workers:     rep.Stats.Workers,
		Strategy:    rep.Stats.Strategy,
		Elapsed:     rep.Stats.Elapsed,
		Paths:       rep.Stats.TotalPaths(),
		States:      rep.Stats.StatesExplored,
		Covered:     rep.Stats.CoveredBlocks,
		Instrs:      rep.Stats.Instrs,
		Queries:     rep.Stats.SolverStats.Queries,
		TimedOut:    rep.Stats.TimedOut,
		Bugs:        len(rep.Bugs),
		Assignments: rep.Stats.SolverStats.Assignments,
		Truncated:   rep.Stats.TruncatedPaths,
		Report:      rep,
	}, nil
}

// MeasureVerifyScaling measures the same verification at each worker
// count, against a fresh engine per run (each run re-optimizes nothing:
// the module is shared, read-only during symbolic execution). The
// returned slice parallels workerCounts.
func MeasureVerifyScaling(mod *ir.Module, spec VerifySpec, workerCounts []int) ([]*VerifyMeasurement, error) {
	out := make([]*VerifyMeasurement, 0, len(workerCounts))
	for _, wc := range workerCounts {
		s := spec
		s.Workers = wc
		m, err := MeasureVerify(mod, s)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}
