package pipeline_test

import (
	"testing"

	"overify/internal/frontend"
	"overify/internal/pipeline"
)

// TestMeasureVerifyScaling: the measurement API must produce identical
// verdicts at every worker count and record the count it ran with.
func TestMeasureVerifyScaling(t *testing.T) {
	src := `
int umain(unsigned char *input, int len) {
	int i = 0;
	int acc = 0;
	while (input[i] != 0) {
		if (input[i] == 'x') { acc = acc + 1; }
		i = i + 1;
	}
	return acc;
}`
	mod, err := frontend.Lower("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipeline.OptimizeAtLevel(mod, pipeline.O0); err != nil {
		t.Fatal(err)
	}
	spec := pipeline.VerifySpec{InputBytes: 3}
	ms, err := pipeline.MeasureVerifyScaling(mod, spec, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("got %d measurements, want 3", len(ms))
	}
	for i, want := range []int{1, 2, 4} {
		if ms[i].Workers != want {
			t.Errorf("measurement %d ran with %d workers, want %d", i, ms[i].Workers, want)
		}
		if ms[i].Paths != ms[0].Paths {
			t.Errorf("paths at %d workers = %d, want %d (worker count must not change verdicts)",
				ms[i].Workers, ms[i].Paths, ms[0].Paths)
		}
		if ms[i].Instrs != ms[0].Instrs {
			t.Errorf("instrs at %d workers = %d, want %d", ms[i].Workers, ms[i].Instrs, ms[0].Instrs)
		}
		if ms[i].Bugs != 0 {
			t.Errorf("unexpected bugs at %d workers", ms[i].Workers)
		}
	}
}

// TestMeasureVerifyDefaults: zero-value spec fields resolve to the
// documented defaults.
func TestMeasureVerifyDefaults(t *testing.T) {
	src := `
int umain(unsigned char *input, int len) {
	return 0;
}`
	mod, err := frontend.Lower("t", src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := pipeline.MeasureVerify(mod, pipeline.VerifySpec{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Workers != 1 {
		t.Errorf("default workers = %d, want 1", m.Workers)
	}
	if m.Paths == 0 {
		t.Error("no paths measured")
	}
}
