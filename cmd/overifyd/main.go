// Command overifyd is the long-lived verification server: it keeps the
// expensive state — the hash-consed expression DAG, the striped solver
// query cache, compiled modules, and the content-addressed verdict
// store — warm in one process and serves verify/compile/explain
// requests over a unix socket or stdio. A warm repeat verify of
// unchanged content is answered from the verdict store without
// exploring at all; changed content still reuses the shared solver
// cache and compiled modules.
//
// Usage:
//
//	overifyd -listen /tmp/overifyd.sock [-verdict-cache DIR] [-max-jobs N]
//	overifyd -listen /tmp/overifyd.sock -preload 'src/*.c'
//	overifyd -listen /tmp/w1.sock -verdict-cache /tmp/v1 -remote-verdicts /tmp/cache.sock
//	overifyd -stdio
//
// -preload compiles every source matching the glob into the module
// cache (and probes the verdict store for each) before the daemon
// accepts its first connection, so first requests start warm.
//
// -remote-verdicts points at another overifyd acting as a cluster-wide
// verdict cache: a local store miss probes the remote over verdictGet
// before exploring, and a cold cacheable outcome publishes back over
// verdictPut — so one worker's verification warms every worker.
//
// Clients: `symbex -daemon /tmp/overifyd.sock file.c`, or any speaker
// of the length-prefixed JSON packet protocol in internal/daemon.
// SIGINT/SIGTERM drain gracefully: in-flight jobs finish, new work is
// rejected as overloaded, then the process exits.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"overify/internal/daemon"
	"overify/internal/verdicts"
)

func main() {
	listen := flag.String("listen", "", "unix socket path to serve on")
	stdio := flag.Bool("stdio", false, "serve a single connection on stdin/stdout (esbuild-style service mode)")
	name := flag.String("name", "overifyd", "daemon name reported in handshakes and stats")
	verdictDir := flag.String("verdict-cache", "", "content-addressed verdict store directory (empty = no verdict caching)")
	verdictCap := flag.Int("verdict-cap", 0, "max verdict store entries, LRU-evicted (0 = unbounded)")
	maxJobs := flag.Int("max-jobs", 0, "max concurrent verify/compile jobs (0 = one per CPU)")
	queueWait := flag.Duration("queue-wait", 30*time.Second, "how long a request may queue for a job slot before an overloaded rejection")
	solverCap := flag.Int("solver-cache-cap", 0, "max solver cache entries, clock-evicted (0 = default 1M, negative = unbounded)")
	builderCap := flag.Int64("builder-cap", 0, "expression DAG node budget before the builder+cache generation rotates (0 = default 4M, negative = never)")
	compileCap := flag.Int("compile-cache-cap", 0, "max cached compiled modules (0 = default 64, negative = unbounded)")
	preload := flag.String("preload", "", "glob of MiniC sources to compile into the module cache before accepting connections")
	remoteVerdicts := flag.String("remote-verdicts", "", "unix socket of another overifyd serving as a shared verdict cache: local misses probe it, cold cacheable outcomes publish back")
	flag.Parse()

	if (*listen == "") == !*stdio {
		fmt.Fprintln(os.Stderr, "overifyd: exactly one of -listen or -stdio is required")
		os.Exit(2)
	}

	cfg := daemon.Config{
		Name:            *name,
		MaxJobs:         *maxJobs,
		QueueWait:       *queueWait,
		SolverCacheCap:  *solverCap,
		BuilderCap:      *builderCap,
		CompileCacheCap: *compileCap,
	}
	if *verdictDir != "" {
		store, err := verdicts.OpenLimited(*verdictDir, *verdictCap)
		if err != nil {
			fatal(err)
		}
		cfg.Verdicts = store
	}
	if *remoteVerdicts != "" {
		// The remote cache rides the same packet protocol; its gets/puts
		// are best-effort, so a dead cache daemon degrades to cold runs
		// rather than failing verifies.
		if cfg.Verdicts == nil {
			fatal(fmt.Errorf("-remote-verdicts needs -verdict-cache: remote hits are adopted into the local store"))
		}
		client, err := daemon.Dial(*remoteVerdicts)
		if err != nil {
			fatal(err)
		}
		defer client.Close()
		cfg.RemoteVerdicts = client
	}
	s := daemon.NewServer(cfg)

	if *preload != "" {
		n, err := s.Preload(*preload)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "overifyd: preloaded %d module(s) matching %s\n", n, *preload)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	if *stdio {
		// One connection on stdin/stdout; diagnostics go to stderr. The
		// server side sees EOF when the parent closes our stdin.
		done := make(chan struct{})
		go func() {
			defer close(done)
			s.ServeConn(stdioConn{})
		}()
		select {
		case <-done:
		case got := <-sig:
			fmt.Fprintf(os.Stderr, "overifyd: %s — draining\n", got)
			s.Shutdown()
		}
		return
	}

	// A stale socket from a crashed daemon would fail the bind; remove
	// it only if nothing answers there.
	if _, err := os.Stat(*listen); err == nil {
		if c, err := net.Dial("unix", *listen); err == nil {
			c.Close()
			fatal(fmt.Errorf("%s: a daemon is already listening", *listen))
		}
		os.Remove(*listen)
	}
	l, err := net.Listen("unix", *listen)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "overifyd: serving on %s (max %d jobs)\n", *listen, serverMaxJobs(*maxJobs))

	go func() {
		got := <-sig
		fmt.Fprintf(os.Stderr, "overifyd: %s — draining\n", got)
		s.Shutdown()
		os.Remove(*listen)
	}()
	if err := s.Serve(l); err != nil {
		fatal(err)
	}
}

// serverMaxJobs mirrors the daemon's MaxJobs default for the banner.
func serverMaxJobs(flagVal int) int {
	if flagVal > 0 {
		return flagVal
	}
	return runtime.NumCPU()
}

// stdioConn adapts stdin/stdout to the ServeConn contract.
type stdioConn struct{}

func (stdioConn) Read(p []byte) (int, error)  { return os.Stdin.Read(p) }
func (stdioConn) Write(p []byte) (int, error) { return os.Stdout.Write(p) }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "overifyd:", err)
	os.Exit(1)
}
