// Command overify-bench regenerates the paper's tables and figures:
//
//	overify-bench -table1 [-n 10] [-words 50000] [-j workers] [-passes spec]
//	overify-bench -table2 [-n 3]
//	overify-bench -table3
//	overify-bench -figure4 [-n 5] [-timeout 10s] [-j workers] [-search dfs|bfs|covnew|rand|interleave] [-budget [-cover N]] [-json FILE]
//	overify-bench -scaling [-prog wc] [-n 5] [-timeout 60s]
//	overify-bench -search all [-n 3] [-timeout 5s] [-json BENCH_strategies.json]
//	overify-bench -solver [-json BENCH_solver.json]
//	overify-bench -verdicts [-n 3] [-j workers] [-json BENCH_verdicts.json]
//	overify-bench -daemon [-n 3] [-json BENCH_daemon.json]
//	overify-bench -distributed [-n 4] [-prog wc,cksum] [-json BENCH_distributed.json]
//	overify-bench -tune [-tune-budget 64] [-seed S] [-prog wc-c,tr] [-j workers] [-best-out FILE] [-json BENCH_autotune.json]
//	overify-bench -all
//
// -search all runs the strategy comparison (per-strategy t_verify and
// states-explored for every corpus program at -O0 and -O2); any single
// strategy name instead selects the exploration order for the other
// experiments. -budget extends Figure 4 with per-strategy
// time-to-coverage columns (each strategy under the timeout with
// CoverTarget set; -cover overrides the per-cell full-coverage
// target), and -figure4 -json records the study machine-readably.
// -passes overrides every level's pass pipeline for Table 1/Figure 4;
// -j also parallelizes the pass manager (and, in the Table 1/Figure 4
// drivers, compiles whole modules in parallel). -solver runs the
// solver microbenchmarks over a captured corpus query stream — the
// before/after sections of BENCH_solver.json are its -json output
// across solver changes. -verdicts runs the warm-vs-cold verdict-store
// sweep: the full corpus verified twice per level against one
// content-addressed store, asserting the warm pass reproduces every
// cold report byte-identically. Output is the text rendering recorded
// in EXPERIMENTS.md.
//
// -distributed runs the distributed-frontier sweep: each corpus
// program verified serially, then split across in-process worker
// clusters of size 1/2/4 over the daemon's distExplore frames, cold
// and warm, asserting every merged report renders byte-identical
// (modulo schedule-dependent bug witness bytes) to the serial
// baseline. It also records the solver portfolio's fixed-order vs
// racing assignment counters on the hard groups (cksum as control,
// basename as the stalling case) — counters, not wall clock, so the
// comparison reproduces on any machine.
//
// -tune runs the pass-ordering autotuner: one hill-climbing schedule
// search per program (comma-separated -prog restricts the set), each
// candidate gated on bug parity against the stock -OVERIFY baseline
// and ranked by deterministic verify work units. -tune-budget caps
// candidate evaluations per program, -seed fixes the search
// trajectory, and -best-out writes the first program's winning spec to
// a file replayable via `symbex -passes @FILE`. Everywhere a -passes
// spec is accepted, the spelling @FILE loads the spec from that file.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"overify/internal/bench"
	"overify/internal/pipeline"
	"overify/internal/symex"
)

// loadPassSpec resolves a -passes argument: the spelling @FILE reads
// the spec text from FILE (the -best-out replay path), anything else is
// the spec itself.
func loadPassSpec(arg string) (string, error) {
	if !strings.HasPrefix(arg, "@") {
		return arg, nil
	}
	data, err := os.ReadFile(strings.TrimPrefix(arg, "@"))
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(string(data)), nil
}

func main() {
	t1 := flag.Bool("table1", false, "run the wc micro-benchmark (Table 1)")
	t2 := flag.Bool("table2", false, "run the per-transformation ablation (Table 2)")
	t3 := flag.Bool("table3", false, "run the corpus pass statistics (Table 3)")
	f4 := flag.Bool("figure4", false, "run the corpus verification study (Figure 4)")
	scaling := flag.Bool("scaling", false, "run the worker-scaling study (1..N workers per level)")
	all := flag.Bool("all", false, "run everything")
	n := flag.Int("n", 0, "symbolic input bytes (0 = per-experiment default)")
	words := flag.Int("words", 0, "t_run word count for Table 1")
	timeout := flag.Duration("timeout", 0, "per-run budget for Figure 4 / Table 1 / scaling / strategy verification")
	workers := flag.Int("j", 0, "symbolic-execution workers for Table 1 / Figure 4 (0/1 serial, -1 = NumCPU)")
	prog := flag.String("prog", "", "corpus target for the scaling study (default wc)")
	search := flag.String("search", "", "search strategy (dfs, bfs, covnew, rand, interleave) — or 'all' to run the strategy comparison")
	seed := flag.Int64("seed", 0, "random-path seed")
	jsonPath := flag.String("json", "", "write the strategy comparison (or, with -figure4, the figure 4 study) as JSON to this path")
	passSpec := flag.String("passes", "", "explicit pass pipeline for Table 1 / Figure 4 compiles")
	budget := flag.Bool("budget", false, "add per-strategy time-to-coverage columns to Figure 4")
	coverTarget := flag.Int("cover", 0, "block-coverage target for -budget (0 = each cell's full coverage)")
	solverBench := flag.Bool("solver", false, "run the solver microbenchmarks on a captured corpus query stream")
	verdictSweep := flag.Bool("verdicts", false, "run the warm-vs-cold verdict-store sweep over the corpus")
	daemonSweep := flag.Bool("daemon", false, "run the warm-vs-cold daemon sweep: cold CLI path vs repeat requests against one warm in-process server")
	distSweep := flag.Bool("distributed", false, "run the distributed-frontier sweep: serial baseline vs worker clusters of 1/2/4, plus the solver-portfolio comparison on hard groups")
	slicingSweep := flag.Bool("slicing", false, "run the verification-aware slicing study: baseline vs sliced exploration per program x level")
	tuneSweep := flag.Bool("tune", false, "run the pass-ordering autotuner: search schedules that beat -OVERIFY on verify work units")
	tuneBudget := flag.Int("tune-budget", 64, "candidate evaluations per program for -tune")
	bestOut := flag.String("best-out", "", "with -tune: write the first program's winning spec to this file (replay with symbex -passes @FILE)")
	flag.Parse()

	var pipeSpec *pipeline.PipelineSpec
	if *passSpec != "" {
		text, err := loadPassSpec(*passSpec)
		check(err)
		spec, err := pipeline.ParsePipeline(text)
		check(err)
		pipeSpec = &spec
	}

	strategies := *search == "all"
	var strat symex.SearchKind
	if !strategies && *search != "" {
		var err error
		strat, err = symex.ParseSearch(*search)
		check(err)
	}

	if strategies {
		opts := bench.StrategyCompareOptions{
			InputBytes: *n, Timeout: *timeout, Workers: *workers, Seed: *seed,
		}
		if *prog != "" {
			opts.Programs = []string{*prog}
		}
		rows, err := bench.StrategyCompare(opts)
		check(err)
		fmt.Println(bench.RenderStrategyCompare(rows, opts))
		if *jsonPath != "" {
			data, err := bench.StrategyCompareJSON(rows, opts)
			check(err)
			check(os.WriteFile(*jsonPath, append(data, '\n'), 0o644))
			fmt.Printf("(wrote %s)\n", *jsonPath)
		}
	}

	if *solverBench {
		results, err := bench.SolverBench()
		check(err)
		fmt.Println(bench.RenderSolverBench(results))
		if *jsonPath != "" {
			data, err := bench.SolverBenchJSON(results)
			check(err)
			check(os.WriteFile(*jsonPath, append(data, '\n'), 0o644))
			fmt.Printf("(wrote %s)\n", *jsonPath)
		}
	}

	if *verdictSweep {
		opts := bench.VerdictSweepOptions{InputBytes: *n, Workers: *workers}
		if *prog != "" {
			opts.Programs = []string{*prog}
		}
		rows, err := bench.VerdictSweep(opts)
		check(err)
		fmt.Println(bench.RenderVerdictSweep(rows, opts))
		if *jsonPath != "" {
			data, err := bench.VerdictSweepJSON(rows, opts)
			check(err)
			check(os.WriteFile(*jsonPath, append(data, '\n'), 0o644))
			fmt.Printf("(wrote %s)\n", *jsonPath)
		}
	}

	if *daemonSweep {
		opts := bench.DaemonSweepOptions{InputBytes: *n}
		if *prog != "" {
			opts.Programs = []string{*prog}
		}
		rows, err := bench.DaemonSweep(opts)
		check(err)
		fmt.Println(bench.RenderDaemonSweep(rows, opts))
		if *jsonPath != "" {
			data, err := bench.DaemonSweepJSON(rows, opts)
			check(err)
			check(os.WriteFile(*jsonPath, append(data, '\n'), 0o644))
			fmt.Printf("(wrote %s)\n", *jsonPath)
		}
	}

	if *distSweep {
		opts := bench.DistributedSweepOptions{InputBytes: *n}
		if *prog != "" {
			opts.Programs = strings.Split(*prog, ",")
		}
		res, err := bench.DistributedSweep(opts)
		check(err)
		fmt.Println(bench.RenderDistributedSweep(res, opts))
		if *jsonPath != "" {
			data, err := bench.DistributedSweepJSON(res, opts)
			check(err)
			check(os.WriteFile(*jsonPath, append(data, '\n'), 0o644))
			fmt.Printf("(wrote %s)\n", *jsonPath)
		}
	}

	if *slicingSweep {
		opts := bench.SliceSweepOptions{InputBytes: *n, Timeout: *timeout}
		if *prog != "" {
			opts.Programs = []string{*prog}
		}
		rows, err := bench.SliceSweep(opts)
		check(err)
		fmt.Println(bench.RenderSliceSweep(rows, opts))
		if *jsonPath != "" {
			data, err := bench.SliceSweepJSON(rows, opts)
			check(err)
			check(os.WriteFile(*jsonPath, append(data, '\n'), 0o644))
			fmt.Printf("(wrote %s)\n", *jsonPath)
		}
	}

	if *tuneSweep {
		opts := bench.TuneSweepOptions{
			InputBytes: *n, Budget: *tuneBudget, Seed: *seed,
			Timeout: *timeout, Jobs: *workers,
		}
		if *prog != "" {
			opts.Programs = strings.Split(*prog, ",")
		}
		rows, err := bench.TuneSweep(opts)
		check(err)
		fmt.Println(bench.RenderTuneSweep(rows, opts))
		if *jsonPath != "" {
			data, err := bench.TuneSweepJSON(rows, opts)
			check(err)
			check(os.WriteFile(*jsonPath, append(data, '\n'), 0o644))
			fmt.Printf("(wrote %s)\n", *jsonPath)
		}
		if *bestOut != "" && len(rows) > 0 {
			check(os.WriteFile(*bestOut, []byte(rows[0].BestSpec+"\n"), 0o644))
			fmt.Printf("(wrote %s — replay with: symbex -passes @%s -prog %s)\n",
				*bestOut, *bestOut, rows[0].Program)
		}
	}

	if !(*t1 || *t2 || *t3 || *f4 || *scaling || *all) {
		if strategies || *solverBench || *verdictSweep || *daemonSweep || *distSweep || *slicingSweep || *tuneSweep {
			return
		}
		flag.Usage()
		os.Exit(2)
	}
	if *all {
		*t1, *t2, *t3, *f4, *scaling = true, true, true, true, true
	}

	if *t1 {
		opts := bench.Table1Options{InputBytes: *n, RunWords: *words, VerifyTimeout: *timeout, Workers: *workers, Strategy: strat, Seed: *seed, Pipeline: pipeSpec}
		rows, err := bench.Table1(opts)
		check(err)
		fmt.Println(bench.RenderTable1(rows, opts))
	}
	if *t2 {
		opts := bench.Table2Options{InputBytes: *n}
		rows, err := bench.Table2(opts)
		check(err)
		fmt.Println(bench.RenderTable2(rows))
	}
	if *t3 {
		rows, err := bench.Table3()
		check(err)
		fmt.Println(bench.RenderTable3(rows))
	}
	if *f4 {
		opts := bench.Figure4Options{
			InputBytes: *n, Timeout: *timeout, Workers: *workers,
			Strategy: strat, Seed: *seed, Pipeline: pipeSpec,
			Budget: *budget, CoverTarget: *coverTarget,
		}
		if *prog != "" {
			opts.Programs = []string{*prog}
		}
		start := time.Now()
		rows, summary, err := bench.Figure4(opts)
		check(err)
		fmt.Println(bench.RenderFigure4(rows, summary, opts))
		fmt.Printf("(figure 4 harness wall time: %s)\n", time.Since(start).Round(time.Millisecond))
		if *jsonPath != "" && !strategies {
			data, err := bench.Figure4JSON(rows, summary, opts)
			check(err)
			check(os.WriteFile(*jsonPath, append(data, '\n'), 0o644))
			fmt.Printf("(wrote %s)\n", *jsonPath)
		}
	}
	if *scaling {
		opts := bench.ScalingOptions{Program: *prog, InputBytes: *n, Timeout: *timeout, Strategy: strat, Seed: *seed}
		rows, err := bench.Scaling(opts)
		check(err)
		fmt.Println(bench.RenderScaling(rows, opts))
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "overify-bench:", err)
		os.Exit(1)
	}
}
