// Command minicvm compiles a MiniC program to bytecode and runs it
// concretely on the register VM — the "release binary" workflow.
//
// Usage:
//
//	minicvm [-O level] [-input text] file.c
//	minicvm [-O level] [-input text] -prog echo
package main

import (
	"flag"
	"fmt"
	"os"

	"overify/internal/core"
	"overify/internal/coreutils"
	"overify/internal/pipeline"
	"overify/internal/vm"
)

func main() {
	level := flag.String("O", "-O3", "optimization level")
	input := flag.String("input", "", "program input (also determines len)")
	progName := flag.String("prog", "", "run a bundled corpus program")
	entry := flag.String("entry", "umain", "entry function")
	flag.Parse()

	lvl, err := pipeline.ParseLevel(*level)
	if err != nil {
		fatal(err)
	}
	var name, src string
	switch {
	case *progName != "":
		p, ok := coreutils.Get(*progName)
		if !ok {
			fatal(fmt.Errorf("unknown corpus program %q", *progName))
		}
		name, src = p.Name, p.Src
		if *input == "" {
			*input = p.Sample
		}
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		name, src = flag.Arg(0), string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: minicvm [-O level] [-input text] file.c | -prog name")
		os.Exit(2)
	}

	c, err := core.CompileSource(name, src, lvl, core.DefaultLibc(lvl))
	if err != nil {
		fatal(err)
	}
	prog, err := vm.Compile(c.Mod)
	if err != nil {
		fatal(err)
	}
	m := vm.NewMachine(prog)
	buf := vm.ByteObject("input", append([]byte(*input), 0))
	ret, err := m.Call(*entry, vm.PtrValue(buf, 0), vm.IntValue(32, uint64(len(*input))))
	if err != nil {
		fatal(err)
	}
	if out, ok := m.GlobalData("OUT"); ok {
		if outn, ok2 := m.GlobalData("OUTN"); ok2 && len(outn) > 0 {
			n := int(outn[0])
			if n > len(out) {
				n = len(out)
			}
			bytes := make([]byte, n)
			for i := 0; i < n; i++ {
				bytes[i] = byte(out[i])
			}
			if n > 0 {
				fmt.Printf("output: %q\n", string(bytes))
			}
		}
	}
	fmt.Printf("exit: %d (%d vm instructions)\n", int32(ret.Bits), m.Stats.Instrs)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minicvm:", err)
	os.Exit(1)
}
