// Command symbex symbolically verifies a MiniC program: it compiles at
// the chosen level and exhaustively explores all paths for a bounded
// symbolic input, reporting paths, solver statistics and any bugs found
// (each with a concrete reproducing input).
//
// Usage:
//
//	symbex [-O level] [-passes spec] [-n bytes] [-timeout d] [-search dfs|bfs|covnew|rand|interleave] [-seed s] [-cover blocks] [-j workers] file.c
//	symbex [-O level] [-n bytes] [-j workers] -prog tr
//	symbex -check div-by-zero,bounds -slice file.c
//	symbex -daemon /tmp/overifyd.sock file.c
//	symbex -cluster /tmp/w1.sock,/tmp/w2.sock -prog uniq
//
// -check verifies only the named check kinds; -slice additionally
// deletes, before exploration, everything no kept check (or native
// trap) can observe — see the README's slicing section.
//
// -passes overrides the level's pass pipeline with an explicit spec,
// e.g. "mem2reg,fixpoint:12(ifconvert,simplify,cse,simplifycfg,dce)";
// the level still supplies the cost model. -j parallelizes both the
// pass manager's function passes and the symbolic-execution workers.
//
// -daemon turns symbex into a thin client of a running overifyd: the
// request is shipped over the daemon's socket and served from its warm
// caches (compiled modules, solver cache, verdict store), which makes
// repeat verifies of unchanged content near-instant. -watch composes
// with it: each edit becomes one daemon request.
//
// -cluster turns symbex into a distributed-frontier coordinator: it
// explores a breadth-first prefix locally, serializes the pending
// frontier, ships one shard to each listed overifyd worker over the
// packet protocol, and merges the workers' reports into totals equal
// to a serial run's. -split sets the frontier width the prefix aims
// for; -normalized prints the schedule-invariant conformance render
// (counters + bug identities, witness bytes elided) instead of the
// human report, so a serial and a cluster run of the same program can
// be diffed byte-for-byte — the CI distributed-smoke job does exactly
// that.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"overify/internal/core"
	"overify/internal/coreutils"
	"overify/internal/daemon"
	"overify/internal/dist"
	"overify/internal/ir"
	"overify/internal/pipeline"
	"overify/internal/symex"
	"overify/internal/verdicts"
	"overify/internal/watch"
)

func main() {
	level := flag.String("O", "-OVERIFY", "optimization level")
	passSpec := flag.String("passes", "", "explicit pass pipeline, e.g. mem2reg,fixpoint(ifconvert,simplify,cse,simplifycfg,dce)")
	n := flag.Int("n", 4, "symbolic input bytes (the paper uses 2-10)")
	timeout := flag.Duration("timeout", 60*time.Second, "exploration budget")
	search := flag.String("search", "dfs", "exploration order: dfs, bfs, covnew, rand or interleave")
	seed := flag.Int64("seed", 0, "random-path seed (0 = fixed default)")
	coverTarget := flag.Int("cover", 0, "stop once this many basic blocks are covered (0 = off)")
	workers := flag.Int("j", 1, "exploration workers (-1 = one per CPU)")
	progName := flag.String("prog", "", "verify a bundled corpus program")
	entry := flag.String("entry", "umain", "entry function (signature: int f(unsigned char*, int))")
	checkSpec := flag.String("check", "", "verify only these check kinds (comma-separated, e.g. div-by-zero,bounds; default all)")
	sliceFlag := flag.Bool("slice", false, "verification-aware slicing: delete whatever the kept checks cannot observe before exploring")
	verdictDir := flag.String("verdict-cache", "", "content-addressed verdict store directory (e.g. .overify-cache); unchanged content skips exploration")
	daemonAddr := flag.String("daemon", "", "verify through a running overifyd at this unix socket instead of in-process")
	clusterAddrs := flag.String("cluster", "", "comma-separated overifyd unix sockets: coordinate a distributed-frontier verification across these workers")
	splitStates := flag.Int("split", 0, "with -cluster: frontier states the split prefix aims for before sharding (default 8 per worker)")
	normalized := flag.Bool("normalized", false, "print the normalized conformance render (schedule-invariant) instead of the human report")
	portfolio := flag.Int("portfolio", 0, "race this many solver configurations once a group stalls, first answer wins (0 = fixed order)")
	portfolioStall := flag.Int64("portfolio-stall", 0, "assignments a group may burn before the portfolio races (default 4096)")
	watchFlag := flag.Bool("watch", false, "poll the source file for changes and re-verify on each edit (file input only; implies -verdict-cache unless -daemon)")
	watchCount := flag.Int("watch-count", 0, "with -watch: exit after this many verifies, with a failing exit code if the final one found bugs (0 = watch forever)")
	flag.Parse()

	lvl, err := pipeline.ParseLevel(*level)
	if err != nil {
		fatal(err)
	}
	var name, src, file string
	switch {
	case *progName != "":
		p, ok := coreutils.Get(*progName)
		if !ok {
			fatal(fmt.Errorf("unknown corpus program %q", *progName))
		}
		name, src = p.Name, p.Src
	case flag.NArg() == 1:
		file = flag.Arg(0)
		data, err := os.ReadFile(file)
		if err != nil {
			fatal(err)
		}
		name, src = file, string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: symbex [-O level] [-n bytes] file.c | -prog name")
		os.Exit(2)
	}
	if *watchFlag && file == "" {
		fatal(fmt.Errorf("-watch needs a source file to poll; corpus programs do not change"))
	}
	if *watchCount != 0 && !*watchFlag {
		fatal(fmt.Errorf("-watch-count only makes sense with -watch"))
	}

	var pipeSpec *pipeline.PipelineSpec
	if *passSpec != "" {
		if strings.HasPrefix(*passSpec, "@") {
			// @FILE: load the spec text from a file — the replay path for
			// overify-bench -tune -best-out winners.
			data, err := os.ReadFile(strings.TrimPrefix(*passSpec, "@"))
			if err != nil {
				fatal(err)
			}
			*passSpec = strings.TrimSpace(string(data))
		}
		spec, err := pipeline.ParsePipeline(*passSpec)
		if err != nil {
			fatal(err)
		}
		pipeSpec = &spec
	}
	strat, err := symex.ParseSearch(*search)
	if err != nil {
		fatal(err)
	}
	checks, err := ir.ParseCheckSet(*checkSpec)
	if err != nil {
		fatal(err)
	}

	if *clusterAddrs != "" {
		// Coordinator mode: split the frontier here, farm shards to the
		// listed workers, merge. One-shot — no watch loop.
		switch {
		case *daemonAddr != "":
			fatal(fmt.Errorf("-cluster and -daemon are mutually exclusive"))
		case *watchFlag:
			fatal(fmt.Errorf("-cluster does not compose with -watch"))
		}
		var clients []*daemon.Client
		for _, addr := range strings.Split(*clusterAddrs, ",") {
			client, err := daemon.Dial(strings.TrimSpace(addr))
			if err != nil {
				fatal(err)
			}
			defer client.Close()
			clients = append(clients, client)
		}
		res, err := dist.Verify(clients, dist.Options{
			Name: name, Source: src,
			Level: *level, Passes: *passSpec,
			Slice: *sliceFlag, Checks: *checkSpec,
			Entry: *entry, InputBytes: *n,
			SplitStates: *splitStates,
			Search:      *search, Seed: *seed, Workers: *workers,
			TimeoutMS: timeout.Milliseconds(),
			Portfolio: *portfolio, PortfolioStall: *portfolioStall,
		})
		if err != nil {
			fatal(err)
		}
		// Provenance goes to stderr so stdout stays diffable against a
		// serial -normalized run.
		fmt.Fprintf(os.Stderr, "cluster: %d workers, %d frontier states split, %d shards shipped\n",
			res.Cluster, res.SplitStates, res.ShardsSent)
		if *normalized {
			fmt.Print(dist.NormalizedRender(res.Report))
		} else {
			reportCluster(name, *level, *n, res)
		}
		if len(res.Report.Bugs) > 0 {
			os.Exit(1)
		}
		return
	}

	var run func(src string) bool
	if *daemonAddr != "" {
		if *normalized {
			fatal(fmt.Errorf("-normalized needs the full report; the daemon returns its canonical render (drop -daemon, or use -cluster)"))
		}
		// Thin-client mode: all caching lives daemon-side.
		client, err := daemon.Dial(*daemonAddr)
		if err != nil {
			fatal(err)
		}
		defer client.Close()
		run = func(src string) bool {
			reply, err := client.Verify(&daemon.VerifyRequest{
				Name: name, Source: src,
				Level: *level, Passes: *passSpec, Entry: *entry,
				InputBytes: *n, TimeoutMS: timeout.Milliseconds(),
				Search: *search, Seed: *seed, Cover: *coverTarget,
				Workers: *workers,
				Slice:   *sliceFlag, Checks: *checkSpec,
			})
			if err != nil {
				if *watchFlag {
					fmt.Fprintln(os.Stderr, "symbex:", err)
					return false
				}
				fatal(err)
			}
			reportDaemon(client.ServerName, reply, *n)
			return len(reply.Bugs) == 0
		}
	} else {
		var store *verdicts.Store
		if dir := *verdictDir; dir != "" || *watchFlag {
			store, err = verdicts.Open(dir)
			if err != nil {
				fatal(err)
			}
		}
		opts := core.VerifyOptions{InputBytes: *n, Verdicts: store, Checks: checks}
		opts.Engine.Timeout = *timeout
		opts.Engine.Workers = *workers
		opts.Engine.Strategy = strat
		opts.Engine.Seed = *seed
		opts.Engine.CoverTarget = *coverTarget
		opts.Engine.Solver.Portfolio = *portfolio
		opts.Engine.Solver.PortfolioStall = *portfolioStall
		run = func(src string) bool {
			cfg := pipeline.LevelConfig(lvl)
			cfg.Jobs = *workers
			cfg.Pipeline = pipeSpec
			cfg.Slice = *sliceFlag
			cfg.SliceChecks = checks
			c, err := core.CompileWithConfig(name, src, cfg, core.DefaultLibc(lvl))
			if err != nil {
				if *watchFlag {
					fmt.Fprintln(os.Stderr, "symbex:", err)
					return false
				}
				fatal(err)
			}
			rep, err := c.Verify(*entry, opts)
			if err != nil {
				if *watchFlag {
					fmt.Fprintln(os.Stderr, "symbex:", err)
					return false
				}
				fatal(err)
			}
			if *normalized {
				fmt.Print(dist.NormalizedRender(rep))
			} else {
				report(name, lvl, *n, c, rep, store)
			}
			return len(rep.Bugs) == 0
		}
	}

	if !*watchFlag {
		if !run(src) {
			os.Exit(1)
		}
		return
	}

	// Watch mode: verify now, then re-verify on every change. Changes
	// are detected by (mtime, size) signature — mtime alone misses an
	// edit landing within the same timestamp granularity as the last
	// read — and content is read with a stat-read-stat stability check
	// so a save racing the poll never verifies torn source. With warm
	// caches attached (a verdict store, or a daemon), an edit that
	// touches nothing reachable from the entry re-verifies in cache-hit
	// time.
	where := "in-process"
	if *daemonAddr != "" {
		where = "daemon " + *daemonAddr
	}
	fmt.Printf("watching %s (poll %s, %s) — ctrl-c to stop\n", file, watchPoll, where)
	var last watch.Sig
	ran := 0
	ok := true
	for {
		sig, err := watch.StatSig(file)
		if err == nil && sig.Changed(last) {
			data, stableSig, err := watch.ReadStable(file)
			if err != nil {
				// Leave `last` untouched so the next poll retries.
				fmt.Fprintln(os.Stderr, "symbex:", err)
			} else {
				last = stableSig
				ok = run(string(data))
				ran++
				fmt.Println()
				if *watchCount > 0 && ran >= *watchCount {
					if !ok {
						os.Exit(1)
					}
					return
				}
			}
		}
		time.Sleep(watchPoll)
	}
}

// watchPoll is the -watch polling interval.
const watchPoll = 300 * time.Millisecond

// reportDaemon prints a daemon verify reply: the canonical render plus
// where the answer came from.
func reportDaemon(server string, r *daemon.VerifyReply, n int) {
	fmt.Printf("%s at %s, %d symbolic input bytes (via %s, generation %d)\n",
		r.Name, r.Level, n, server, r.Generation)
	fmt.Printf("  compile:        %.1fms", r.CompileMS)
	if r.CompileCacheHit {
		fmt.Printf("  (module cache hit)")
	}
	fmt.Println()
	fmt.Printf("  verify:         %.1fms", r.VerifyMS)
	switch {
	case r.VerdictCacheHit:
		fmt.Printf("  (verdict cache hit — exploration skipped)")
	case r.SolverQueries > 0:
		fmt.Printf("  (%d of %d solver queries answered without a fresh search)",
			r.SolverQueries-r.SolverSearches, r.SolverQueries)
	}
	fmt.Println()
	fmt.Print(indent(r.Render, "  "))
}

// reportCluster prints a merged distributed report: the coordinator
// has no single compile/verify wall-clock story to tell (each worker
// timed its own shard), so it reports the schedule-invariant totals
// plus the cluster shape.
func reportCluster(name, level string, n int, res *dist.Result) {
	s := res.Report.Stats
	fmt.Printf("%s at %s, %d symbolic input bytes (cluster of %d workers)\n", name, level, n, res.Cluster)
	fmt.Printf("  frontier:       %d states split, %d shards shipped\n", res.SplitStates, res.ShardsSent)
	fmt.Printf("  paths:          %d completed, %d errored, %d truncated\n", s.Paths, s.ErrorPaths, s.TruncatedPaths)
	fmt.Printf("  instructions:   %d\n", s.Instrs)
	fmt.Printf("  blocks:         %d covered (cluster union)\n", s.CoveredBlocks)
	fmt.Printf("  solver:         %d queries, %d sat, %d unsat", s.SolverStats.Queries, s.SolverStats.Sat, s.SolverStats.Unsat)
	if s.SolverStats.PortfolioRaces > 0 {
		fmt.Printf(", %d portfolio races (%d won by a non-default order)",
			s.SolverStats.PortfolioRaces, s.SolverStats.PortfolioWins)
	}
	fmt.Println()
	if len(res.Report.Bugs) == 0 {
		fmt.Printf("  bugs:           none — all %d paths verified\n", s.Paths)
		return
	}
	fmt.Printf("  bugs:           %d\n", len(res.Report.Bugs))
	for _, b := range res.Report.Bugs {
		fmt.Printf("    [%s] %s\n", b.Kind, b.Msg)
		if b.Input != nil {
			fmt.Printf("      reproducing input: %q\n", string(b.Input))
		}
	}
}

func indent(s, pad string) string {
	var out []byte
	atStart := true
	for i := 0; i < len(s); i++ {
		if atStart && s[i] != '\n' {
			out = append(out, pad...)
		}
		out = append(out, s[i])
		atStart = s[i] == '\n'
	}
	return string(out)
}

func report(name string, lvl pipeline.Level, n int, c *core.Compiled, rep *symex.Report, store *verdicts.Store) {
	s := rep.Stats
	if s.VerdictCacheHits > 0 {
		fmt.Printf("%s at %s, %d symbolic input bytes\n", name, lvl, n)
		fmt.Printf("  compile:        %s  (%d pass invocations, %d skipped, %.0f%% analysis-cache hits)\n",
			c.Result.CompileTime, c.Result.PassInvocations, c.Result.SkippedFuncRuns,
			100*c.Result.Analysis.HitRate())
		fmt.Printf("  verdicts:       cache hit — exploration skipped (%d paths, %d queries reproduced from %s)\n",
			s.Paths, s.SolverStats.Queries, store.Dir())
	} else {
		fmt.Printf("%s at %s, %d symbolic input bytes, %d workers, %s search\n", name, lvl, n, s.Workers, s.Strategy)
		fmt.Printf("  compile:        %s  (%d pass invocations, %d skipped, %.0f%% analysis-cache hits)\n",
			c.Result.CompileTime, c.Result.PassInvocations, c.Result.SkippedFuncRuns,
			100*c.Result.Analysis.HitRate())
		fmt.Printf("  verify:         %s", s.Elapsed)
		if s.TimedOut {
			fmt.Printf("  (TIMED OUT)")
		}
		fmt.Println()
		fmt.Printf("  paths:          %d completed, %d errored, %d truncated\n",
			s.Paths, s.ErrorPaths, s.TruncatedPaths)
		fmt.Printf("  instructions:   %d\n", s.Instrs)
		fmt.Printf("  forks:          %d (max %d live states)\n", s.Forks, s.MaxLiveStates)
		fmt.Printf("  states:         %d explored, %d blocks covered\n", s.StatesExplored, s.CoveredBlocks)
		fmt.Printf("  solver:         %d queries, %d cache hits, %d model reuses, %d failures\n",
			s.SolverStats.Queries, s.SolverStats.CacheHits,
			s.SolverStats.ModelReuseHits, s.SolverStats.Failures)
		if store != nil {
			fmt.Printf("  verdicts:       miss — outcome stored in %s (%d entries)\n", store.Dir(), store.Len())
		}
	}
	if len(rep.Bugs) == 0 {
		fmt.Printf("  bugs:           none — all %d paths verified\n", s.Paths)
	} else {
		fmt.Printf("  bugs:           %d\n", len(rep.Bugs))
		for _, b := range rep.Bugs {
			fmt.Printf("    [%s] %s\n", b.Kind, b.Msg)
			if b.Input != nil {
				fmt.Printf("      reproducing input: %q\n", string(b.Input))
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "symbex:", err)
	os.Exit(1)
}
