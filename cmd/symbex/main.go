// Command symbex symbolically verifies a MiniC program: it compiles at
// the chosen level and exhaustively explores all paths for a bounded
// symbolic input, reporting paths, solver statistics and any bugs found
// (each with a concrete reproducing input).
//
// Usage:
//
//	symbex [-O level] [-passes spec] [-n bytes] [-timeout d] [-search dfs|bfs|covnew|rand|interleave] [-seed s] [-cover blocks] [-j workers] file.c
//	symbex [-O level] [-n bytes] [-j workers] -prog tr
//
// -passes overrides the level's pass pipeline with an explicit spec,
// e.g. "mem2reg,fixpoint:12(ifconvert,simplify,cse,simplifycfg,dce)";
// the level still supplies the cost model. -j parallelizes both the
// pass manager's function passes and the symbolic-execution workers.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"overify/internal/core"
	"overify/internal/coreutils"
	"overify/internal/pipeline"
	"overify/internal/symex"
	"overify/internal/verdicts"
)

func main() {
	level := flag.String("O", "-OVERIFY", "optimization level")
	passSpec := flag.String("passes", "", "explicit pass pipeline, e.g. mem2reg,fixpoint(ifconvert,simplify,cse,simplifycfg,dce)")
	n := flag.Int("n", 4, "symbolic input bytes (the paper uses 2-10)")
	timeout := flag.Duration("timeout", 60*time.Second, "exploration budget")
	search := flag.String("search", "dfs", "exploration order: dfs, bfs, covnew, rand or interleave")
	seed := flag.Int64("seed", 0, "random-path seed (0 = fixed default)")
	coverTarget := flag.Int("cover", 0, "stop once this many basic blocks are covered (0 = off)")
	workers := flag.Int("j", 1, "exploration workers (-1 = one per CPU)")
	progName := flag.String("prog", "", "verify a bundled corpus program")
	entry := flag.String("entry", "umain", "entry function (signature: int f(unsigned char*, int))")
	verdictDir := flag.String("verdict-cache", "", "content-addressed verdict store directory (e.g. .overify-cache); unchanged content skips exploration")
	watch := flag.Bool("watch", false, "poll the source file for changes and re-verify on each edit (file input only; implies -verdict-cache)")
	flag.Parse()

	lvl, err := pipeline.ParseLevel(*level)
	if err != nil {
		fatal(err)
	}
	var name, src, file string
	switch {
	case *progName != "":
		p, ok := coreutils.Get(*progName)
		if !ok {
			fatal(fmt.Errorf("unknown corpus program %q", *progName))
		}
		name, src = p.Name, p.Src
	case flag.NArg() == 1:
		file = flag.Arg(0)
		data, err := os.ReadFile(file)
		if err != nil {
			fatal(err)
		}
		name, src = file, string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: symbex [-O level] [-n bytes] file.c | -prog name")
		os.Exit(2)
	}
	if *watch && file == "" {
		fatal(fmt.Errorf("-watch needs a source file to poll; corpus programs do not change"))
	}

	var pipeSpec *pipeline.PipelineSpec
	if *passSpec != "" {
		spec, err := pipeline.ParsePipeline(*passSpec)
		if err != nil {
			fatal(err)
		}
		pipeSpec = &spec
	}
	strat, err := symex.ParseSearch(*search)
	if err != nil {
		fatal(err)
	}
	var store *verdicts.Store
	if dir := *verdictDir; dir != "" || *watch {
		store, err = verdicts.Open(dir)
		if err != nil {
			fatal(err)
		}
	}

	opts := core.VerifyOptions{InputBytes: *n, Verdicts: store}
	opts.Engine.Timeout = *timeout
	opts.Engine.Workers = *workers
	opts.Engine.Strategy = strat
	opts.Engine.Seed = *seed
	opts.Engine.CoverTarget = *coverTarget

	run := func(src string) bool {
		cfg := pipeline.LevelConfig(lvl)
		cfg.Jobs = *workers
		cfg.Pipeline = pipeSpec
		c, err := core.CompileWithConfig(name, src, cfg, core.DefaultLibc(lvl))
		if err != nil {
			if *watch {
				fmt.Fprintln(os.Stderr, "symbex:", err)
				return false
			}
			fatal(err)
		}
		rep, err := c.Verify(*entry, opts)
		if err != nil {
			if *watch {
				fmt.Fprintln(os.Stderr, "symbex:", err)
				return false
			}
			fatal(err)
		}
		report(name, lvl, *n, c, rep, store)
		return len(rep.Bugs) == 0
	}

	if !*watch {
		if !run(src) {
			os.Exit(1)
		}
		return
	}

	// Watch mode: verify now, then re-verify on every mtime change.
	// With the verdict store attached, an edit that touches nothing
	// reachable from the entry (comments, unused functions) re-verifies
	// in cache-hit time.
	fmt.Printf("watching %s (poll %s, verdict cache %s) — ctrl-c to stop\n", file, watchPoll, store.Dir())
	last := time.Time{}
	for {
		st, err := os.Stat(file)
		if err == nil && st.ModTime() != last {
			last = st.ModTime()
			data, err := os.ReadFile(file)
			if err != nil {
				fmt.Fprintln(os.Stderr, "symbex:", err)
			} else {
				run(string(data))
				fmt.Println()
			}
		}
		time.Sleep(watchPoll)
	}
}

// watchPoll is the -watch mtime polling interval.
const watchPoll = 300 * time.Millisecond

func report(name string, lvl pipeline.Level, n int, c *core.Compiled, rep *symex.Report, store *verdicts.Store) {
	s := rep.Stats
	if s.VerdictCacheHits > 0 {
		fmt.Printf("%s at %s, %d symbolic input bytes\n", name, lvl, n)
		fmt.Printf("  compile:        %s  (%d pass invocations, %d skipped, %.0f%% analysis-cache hits)\n",
			c.Result.CompileTime, c.Result.PassInvocations, c.Result.SkippedFuncRuns,
			100*c.Result.Analysis.HitRate())
		fmt.Printf("  verdicts:       cache hit — exploration skipped (%d paths, %d queries reproduced from %s)\n",
			s.Paths, s.SolverStats.Queries, store.Dir())
	} else {
		fmt.Printf("%s at %s, %d symbolic input bytes, %d workers, %s search\n", name, lvl, n, s.Workers, s.Strategy)
		fmt.Printf("  compile:        %s  (%d pass invocations, %d skipped, %.0f%% analysis-cache hits)\n",
			c.Result.CompileTime, c.Result.PassInvocations, c.Result.SkippedFuncRuns,
			100*c.Result.Analysis.HitRate())
		fmt.Printf("  verify:         %s", s.Elapsed)
		if s.TimedOut {
			fmt.Printf("  (TIMED OUT)")
		}
		fmt.Println()
		fmt.Printf("  paths:          %d completed, %d errored, %d truncated\n",
			s.Paths, s.ErrorPaths, s.TruncatedPaths)
		fmt.Printf("  instructions:   %d\n", s.Instrs)
		fmt.Printf("  forks:          %d (max %d live states)\n", s.Forks, s.MaxLiveStates)
		fmt.Printf("  states:         %d explored, %d blocks covered\n", s.StatesExplored, s.CoveredBlocks)
		fmt.Printf("  solver:         %d queries, %d cache hits, %d model reuses, %d failures\n",
			s.SolverStats.Queries, s.SolverStats.CacheHits,
			s.SolverStats.ModelReuseHits, s.SolverStats.Failures)
		if store != nil {
			fmt.Printf("  verdicts:       miss — outcome stored in %s (%d entries)\n", store.Dir(), store.Len())
		}
	}
	if len(rep.Bugs) == 0 {
		fmt.Printf("  bugs:           none — all %d paths verified\n", s.Paths)
	} else {
		fmt.Printf("  bugs:           %d\n", len(rep.Bugs))
		for _, b := range rep.Bugs {
			fmt.Printf("    [%s] %s\n", b.Kind, b.Msg)
			if b.Input != nil {
				fmt.Printf("      reproducing input: %q\n", string(b.Input))
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "symbex:", err)
	os.Exit(1)
}
