// Command symbex symbolically verifies a MiniC program: it compiles at
// the chosen level and exhaustively explores all paths for a bounded
// symbolic input, reporting paths, solver statistics and any bugs found
// (each with a concrete reproducing input).
//
// Usage:
//
//	symbex [-O level] [-passes spec] [-n bytes] [-timeout d] [-search dfs|bfs|covnew|rand|interleave] [-seed s] [-cover blocks] [-j workers] file.c
//	symbex [-O level] [-n bytes] [-j workers] -prog tr
//
// -passes overrides the level's pass pipeline with an explicit spec,
// e.g. "mem2reg,fixpoint:12(ifconvert,simplify,cse,simplifycfg,dce)";
// the level still supplies the cost model. -j parallelizes both the
// pass manager's function passes and the symbolic-execution workers.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"overify/internal/core"
	"overify/internal/coreutils"
	"overify/internal/pipeline"
	"overify/internal/symex"
)

func main() {
	level := flag.String("O", "-OVERIFY", "optimization level")
	passSpec := flag.String("passes", "", "explicit pass pipeline, e.g. mem2reg,fixpoint(ifconvert,simplify,cse,simplifycfg,dce)")
	n := flag.Int("n", 4, "symbolic input bytes (the paper uses 2-10)")
	timeout := flag.Duration("timeout", 60*time.Second, "exploration budget")
	search := flag.String("search", "dfs", "exploration order: dfs, bfs, covnew, rand or interleave")
	seed := flag.Int64("seed", 0, "random-path seed (0 = fixed default)")
	coverTarget := flag.Int("cover", 0, "stop once this many basic blocks are covered (0 = off)")
	workers := flag.Int("j", 1, "exploration workers (-1 = one per CPU)")
	progName := flag.String("prog", "", "verify a bundled corpus program")
	entry := flag.String("entry", "umain", "entry function (signature: int f(unsigned char*, int))")
	flag.Parse()

	lvl, err := pipeline.ParseLevel(*level)
	if err != nil {
		fatal(err)
	}
	var name, src string
	switch {
	case *progName != "":
		p, ok := coreutils.Get(*progName)
		if !ok {
			fatal(fmt.Errorf("unknown corpus program %q", *progName))
		}
		name, src = p.Name, p.Src
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		name, src = flag.Arg(0), string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: symbex [-O level] [-n bytes] file.c | -prog name")
		os.Exit(2)
	}

	cfg := pipeline.LevelConfig(lvl)
	cfg.Jobs = *workers
	if *passSpec != "" {
		spec, err := pipeline.ParsePipeline(*passSpec)
		if err != nil {
			fatal(err)
		}
		cfg.Pipeline = &spec
	}
	c, err := core.CompileWithConfig(name, src, cfg, core.DefaultLibc(lvl))
	if err != nil {
		fatal(err)
	}
	strat, err := symex.ParseSearch(*search)
	if err != nil {
		fatal(err)
	}
	opts := core.VerifyOptions{InputBytes: *n}
	opts.Engine.Timeout = *timeout
	opts.Engine.Workers = *workers
	opts.Engine.Strategy = strat
	opts.Engine.Seed = *seed
	opts.Engine.CoverTarget = *coverTarget
	rep, err := c.Verify(*entry, opts)
	if err != nil {
		fatal(err)
	}

	s := rep.Stats
	fmt.Printf("%s at %s, %d symbolic input bytes, %d workers, %s search\n", name, lvl, *n, s.Workers, s.Strategy)
	fmt.Printf("  compile:        %s  (%d pass invocations, %d skipped, %.0f%% analysis-cache hits)\n",
		c.Result.CompileTime, c.Result.PassInvocations, c.Result.SkippedFuncRuns,
		100*c.Result.Analysis.HitRate())
	fmt.Printf("  verify:         %s", s.Elapsed)
	if s.TimedOut {
		fmt.Printf("  (TIMED OUT)")
	}
	fmt.Println()
	fmt.Printf("  paths:          %d completed, %d errored, %d truncated\n",
		s.Paths, s.ErrorPaths, s.TruncatedPaths)
	fmt.Printf("  instructions:   %d\n", s.Instrs)
	fmt.Printf("  forks:          %d (max %d live states)\n", s.Forks, s.MaxLiveStates)
	fmt.Printf("  states:         %d explored, %d blocks covered\n", s.StatesExplored, s.CoveredBlocks)
	fmt.Printf("  solver:         %d queries, %d cache hits, %d model reuses, %d failures\n",
		s.SolverStats.Queries, s.SolverStats.CacheHits,
		s.SolverStats.ModelReuseHits, s.SolverStats.Failures)
	if len(rep.Bugs) == 0 {
		fmt.Printf("  bugs:           none — all %d paths verified\n", s.Paths)
	} else {
		fmt.Printf("  bugs:           %d\n", len(rep.Bugs))
		for _, b := range rep.Bugs {
			fmt.Printf("    [%s] %s\n", b.Kind, b.Msg)
			if b.Input != nil {
				fmt.Printf("      reproducing input: %q\n", string(b.Input))
			}
		}
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "symbex:", err)
	os.Exit(1)
}
