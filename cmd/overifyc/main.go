// Command overifyc is the MiniC compiler driver: it compiles a source
// file (or a named corpus program) at a chosen optimization level and
// prints the resulting IR, pass statistics, or bytecode.
//
// Usage:
//
//	overifyc [-O level] [-libc kind] [-emit ir|stats|bytecode] file.c
//	overifyc [-O level] -prog wc            # compile a corpus program
//
// Levels: -O0 -O1 -O2 -O3 -OVERIFY (aliases: -OSYMBEX).
package main

import (
	"flag"
	"fmt"
	"os"

	"overify/internal/core"
	"overify/internal/coreutils"
	"overify/internal/libc"
	"overify/internal/pipeline"
	"overify/internal/vm"
)

func main() {
	level := flag.String("O", "-O0", "optimization level: O0, O1, O2, O3, OVERIFY")
	libcKind := flag.String("libc", "", "libc variant: uclibc, verified (default: by level)")
	emit := flag.String("emit", "ir", "what to print: ir, stats, bytecode")
	progName := flag.String("prog", "", "compile a bundled corpus program instead of a file")
	flag.Parse()

	lvl, err := pipeline.ParseLevel(*level)
	if err != nil {
		fatal(err)
	}

	var name, src string
	switch {
	case *progName != "":
		p, ok := coreutils.Get(*progName)
		if !ok {
			fatal(fmt.Errorf("unknown corpus program %q (have: %v)", *progName, coreutils.Names()))
		}
		name, src = p.Name, p.Src
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		name, src = flag.Arg(0), string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: overifyc [-O level] [-emit ir|stats|bytecode] file.c | -prog name")
		os.Exit(2)
	}

	lk := core.DefaultLibc(lvl)
	switch *libcKind {
	case "":
	case "uclibc":
		lk = libc.Uclibc
	case "verified":
		lk = libc.Verified
	default:
		fatal(fmt.Errorf("unknown libc %q", *libcKind))
	}

	c, err := core.CompileSource(name, src, lvl, lk)
	if err != nil {
		fatal(err)
	}

	switch *emit {
	case "ir":
		fmt.Print(c.Mod.String())
	case "stats":
		fmt.Printf("level:       %s\n", lvl)
		fmt.Printf("libc:        %s\n", lk)
		fmt.Printf("compile:     %s\n", c.Result.CompileTime)
		fmt.Printf("passes run:  %d\n", c.Result.PassesRun)
		fmt.Printf("instrs:      %d -> %d\n", c.Result.InstrsIn, c.Result.InstrsOut)
		s := c.Result.Stats
		fmt.Printf("inlined:     %d call sites\n", s.FunctionsInlined)
		fmt.Printf("unswitched:  %d loops\n", s.LoopsUnswitched)
		fmt.Printf("unrolled:    %d loops (%d peels)\n", s.LoopsUnrolled, s.LoopsPeeled)
		fmt.Printf("ifconverted: %d branches\n", s.BranchesConverted)
		fmt.Printf("checks:      %d inserted\n", s.ChecksInserted)
		fmt.Printf("ranges:      %d annotated\n", s.RangesAttached)
	case "bytecode":
		p, err := vm.Compile(c.Mod)
		if err != nil {
			fatal(err)
		}
		fmt.Print(vm.Disasm(p))
	default:
		fatal(fmt.Errorf("unknown -emit %q", *emit))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "overifyc:", err)
	os.Exit(1)
}
